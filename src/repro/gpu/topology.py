"""Multi-GPU interconnect topology (DGX-1 NVLink hybrid cube mesh).

The DGX-1 used in the paper's scaling study wires its 8 V100s in the
NVLink *hybrid cube-mesh*: each GPU has 6 NVLink2 ports; GPUs 0-3 and 4-7
form two quads with doubled links on some edges, plus cross connections —
not a full crossbar, so data placement matters.  The Raven A100 nodes use
NVSwitch, an effective all-to-all.

While the tiled matrix profile needs no GPU-to-GPU traffic during compute
(tiles are independent), the *input distribution* does: the host can feed
every GPU over PCIe, or feed one GPU and let NVLink broadcast.  This
module models both strategies over the real link graphs (networkx), which
is what a production multi-GPU loader would use.
"""

from __future__ import annotations

import networkx as nx

from .device import DeviceSpec, get_device

__all__ = [
    "NVLINK2_BW",
    "NVLINK3_BW",
    "dgx1_topology",
    "nvswitch_topology",
    "pcie_broadcast_time",
    "nvlink_broadcast_time",
    "best_broadcast_time",
    "cluster_topology",
    "degrade_link",
    "cluster_broadcast_time",
    "cluster_reduce_time",
]

#: Per-link NVLink bandwidth (one direction), bytes/s.
NVLINK2_BW = 25e9  # V100 generation
NVLINK3_BW = 50e9  # A100 generation


def dgx1_topology() -> nx.Graph:
    """The DGX-1 hybrid cube-mesh of 8 V100s.

    Edges carry a ``links`` attribute (1 or 2 NVLink bricks) and
    ``bandwidth`` in bytes/s.  Reference: NVIDIA DGX-1 system architecture
    whitepaper; intra-quad neighbours get doubled links on the ring edges.
    """
    graph = nx.Graph(name="DGX-1")
    graph.add_nodes_from(range(8))
    double = [(0, 1), (2, 3), (4, 5), (6, 7), (0, 2), (1, 3), (4, 6), (5, 7)]
    single = [
        (0, 3),
        (1, 2),
        (4, 7),
        (5, 6),
        (0, 4),
        (1, 5),
        (2, 6),
        (3, 7),
    ]
    for u, v in double:
        graph.add_edge(u, v, links=2, bandwidth=2 * NVLINK2_BW)
    for u, v in single:
        graph.add_edge(u, v, links=1, bandwidth=NVLINK2_BW)
    return graph


def nvswitch_topology(n_gpus: int = 4, link_bw: float = NVLINK3_BW * 12 / 2) -> nx.Graph:
    """An NVSwitch all-to-all (Raven A100 nodes): every pair connected at
    the full per-GPU NVLink aggregate."""
    graph = nx.complete_graph(n_gpus)
    graph.name = "NVSwitch"
    for u, v in graph.edges:
        graph.edges[u, v]["links"] = 12
        graph.edges[u, v]["bandwidth"] = link_bw
    return graph


def pcie_broadcast_time(
    nbytes: float, n_gpus: int, device: "DeviceSpec | str"
) -> float:
    """Host feeds every GPU over the shared PCIe complex (serialised)."""
    device = get_device(device)
    if device.pcie_bandwidth <= 0:
        return 0.0
    return n_gpus * nbytes / device.pcie_bandwidth


def nvlink_broadcast_time(
    nbytes: float,
    topology: nx.Graph,
    device: "DeviceSpec | str",
    root: int = 0,
) -> float:
    """Host feeds GPU ``root`` once over PCIe, then the payload propagates
    over NVLink along a breadth-first broadcast tree; each tree depth level
    is one store-and-forward round at the slowest participating link."""
    device = get_device(device)
    if root not in topology:
        raise ValueError(f"root {root} not in topology {topology.name!r}")
    upload = (
        nbytes / device.pcie_bandwidth if device.pcie_bandwidth > 0 else 0.0
    )
    tree = nx.bfs_tree(topology, root)
    total = upload
    # Group tree edges by depth; one round per level.
    depth = nx.shortest_path_length(tree, root)
    max_depth = max(depth.values(), default=0)
    for level in range(1, max_depth + 1):
        edges = [
            (u, v)
            for u, v in tree.edges
            if depth[v] == level
        ]
        if not edges:
            continue
        slowest = min(topology.edges[u, v]["bandwidth"] for u, v in edges)
        total += nbytes / slowest
    return total


def best_broadcast_time(
    nbytes: float,
    n_gpus: int,
    device: "DeviceSpec | str" = "V100",
    topology: nx.Graph | None = None,
) -> tuple[float, str]:
    """The better of PCIe fan-out and NVLink tree broadcast.

    Returns ``(seconds, strategy)``.  Large payloads favour NVLink (per
    level the links are 2-4x PCIe); tiny payloads favour direct PCIe
    (fewer store-and-forward rounds).
    """
    device = get_device(device)
    if topology is None:
        topology = (
            dgx1_topology() if device.name == "V100" else nvswitch_topology(n_gpus)
        )
    sub_nodes = list(topology.nodes)[:n_gpus]
    sub = topology.subgraph(sub_nodes).copy()
    if sub.number_of_nodes() > 1 and not nx.is_connected(sub):
        candidates = {"pcie": pcie_broadcast_time(nbytes, n_gpus, device)}
    else:
        candidates = {
            "pcie": pcie_broadcast_time(nbytes, n_gpus, device),
            "nvlink": nvlink_broadcast_time(nbytes, sub, device),
        }
    strategy = min(candidates, key=candidates.get)
    return candidates[strategy], strategy


# ----------------------------------------------------------------------
# Inter-node fabric (the cluster tier above the intra-node NVLink graphs)


def cluster_topology(
    n_nodes: int,
    bandwidth: float = 12.5e9,
    latency: float = 2.0e-6,
) -> nx.Graph:
    """The inter-node fabric as a node-attributed complete graph.

    A full-bisection fat tree (the Raven interconnect) is all-to-all at
    the NIC rate, so what bounds a collective is each *node's* ingress
    link — modelled as a per-node ``nic_bandwidth`` attribute (bytes/s)
    plus a graph-level ``latency`` (seconds per message).  Degraded-link
    faults scale one node's NIC down via :func:`degrade_link`.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    graph = nx.complete_graph(n_nodes)
    graph.name = "cluster"
    graph.graph["latency"] = latency
    for node in graph.nodes:
        graph.nodes[node]["nic_bandwidth"] = bandwidth
    return graph


def degrade_link(graph: nx.Graph, node: int, factor: float) -> nx.Graph:
    """Scale ``node``'s NIC bandwidth by ``factor`` (in place).

    ``factor`` must lie in (0, 1]: a dead link is a node *crash*, a
    different fault kind — the failure detector, not the cost model,
    owns that transition.
    """
    if node not in graph:
        raise ValueError(f"node {node} not in topology {graph.name!r}")
    if not 0.0 < factor <= 1.0:
        raise ValueError(f"factor must be in (0, 1], got {factor}")
    graph.nodes[node]["nic_bandwidth"] *= factor
    return graph


def _collective_round_time(
    nbytes: float, graph: nx.Graph, nodes
) -> tuple[int, float]:
    """(rounds, seconds-per-round) of a binomial tree over ``nodes``."""
    live = list(graph.nodes) if nodes is None else list(nodes)
    if not live:
        return 0, 0.0
    rounds = max(len(live) - 1, 0).bit_length()
    slowest = min(graph.nodes[n]["nic_bandwidth"] for n in live)
    latency = graph.graph.get("latency", 0.0)
    return rounds, nbytes / slowest + latency


def cluster_broadcast_time(
    nbytes: float, graph: nx.Graph, nodes=None
) -> float:
    """Binomial-tree broadcast of ``nbytes`` to every node in ``nodes``
    (default: all): ceil(log2 N) store-and-forward rounds, each paced by
    the slowest participating NIC plus the fabric latency."""
    rounds, per_round = _collective_round_time(nbytes, graph, nodes)
    return rounds * per_round


def cluster_reduce_time(nbytes: float, graph: nx.Graph, nodes=None) -> float:
    """MPI_Reduce-style gather of per-node partials to the root — the
    same binomial-tree shape as the broadcast (each round halves the
    number of live senders)."""
    rounds, per_round = _collective_round_time(nbytes, graph, nodes)
    return rounds * per_round
