"""Multi-GPU interconnect topology (DGX-1 NVLink hybrid cube mesh).

The DGX-1 used in the paper's scaling study wires its 8 V100s in the
NVLink *hybrid cube-mesh*: each GPU has 6 NVLink2 ports; GPUs 0-3 and 4-7
form two quads with doubled links on some edges, plus cross connections —
not a full crossbar, so data placement matters.  The Raven A100 nodes use
NVSwitch, an effective all-to-all.

While the tiled matrix profile needs no GPU-to-GPU traffic during compute
(tiles are independent), the *input distribution* does: the host can feed
every GPU over PCIe, or feed one GPU and let NVLink broadcast.  This
module models both strategies over the real link graphs (networkx), which
is what a production multi-GPU loader would use.
"""

from __future__ import annotations

import networkx as nx

from .device import DeviceSpec, get_device

__all__ = [
    "NVLINK2_BW",
    "NVLINK3_BW",
    "dgx1_topology",
    "nvswitch_topology",
    "pcie_broadcast_time",
    "nvlink_broadcast_time",
    "best_broadcast_time",
]

#: Per-link NVLink bandwidth (one direction), bytes/s.
NVLINK2_BW = 25e9  # V100 generation
NVLINK3_BW = 50e9  # A100 generation


def dgx1_topology() -> nx.Graph:
    """The DGX-1 hybrid cube-mesh of 8 V100s.

    Edges carry a ``links`` attribute (1 or 2 NVLink bricks) and
    ``bandwidth`` in bytes/s.  Reference: NVIDIA DGX-1 system architecture
    whitepaper; intra-quad neighbours get doubled links on the ring edges.
    """
    graph = nx.Graph(name="DGX-1")
    graph.add_nodes_from(range(8))
    double = [(0, 1), (2, 3), (4, 5), (6, 7), (0, 2), (1, 3), (4, 6), (5, 7)]
    single = [
        (0, 3),
        (1, 2),
        (4, 7),
        (5, 6),
        (0, 4),
        (1, 5),
        (2, 6),
        (3, 7),
    ]
    for u, v in double:
        graph.add_edge(u, v, links=2, bandwidth=2 * NVLINK2_BW)
    for u, v in single:
        graph.add_edge(u, v, links=1, bandwidth=NVLINK2_BW)
    return graph


def nvswitch_topology(n_gpus: int = 4, link_bw: float = NVLINK3_BW * 12 / 2) -> nx.Graph:
    """An NVSwitch all-to-all (Raven A100 nodes): every pair connected at
    the full per-GPU NVLink aggregate."""
    graph = nx.complete_graph(n_gpus)
    graph.name = "NVSwitch"
    for u, v in graph.edges:
        graph.edges[u, v]["links"] = 12
        graph.edges[u, v]["bandwidth"] = link_bw
    return graph


def pcie_broadcast_time(
    nbytes: float, n_gpus: int, device: "DeviceSpec | str"
) -> float:
    """Host feeds every GPU over the shared PCIe complex (serialised)."""
    device = get_device(device)
    if device.pcie_bandwidth <= 0:
        return 0.0
    return n_gpus * nbytes / device.pcie_bandwidth


def nvlink_broadcast_time(
    nbytes: float,
    topology: nx.Graph,
    device: "DeviceSpec | str",
    root: int = 0,
) -> float:
    """Host feeds GPU ``root`` once over PCIe, then the payload propagates
    over NVLink along a breadth-first broadcast tree; each tree depth level
    is one store-and-forward round at the slowest participating link."""
    device = get_device(device)
    if root not in topology:
        raise ValueError(f"root {root} not in topology {topology.name!r}")
    upload = (
        nbytes / device.pcie_bandwidth if device.pcie_bandwidth > 0 else 0.0
    )
    tree = nx.bfs_tree(topology, root)
    total = upload
    # Group tree edges by depth; one round per level.
    depth = nx.shortest_path_length(tree, root)
    max_depth = max(depth.values(), default=0)
    for level in range(1, max_depth + 1):
        edges = [
            (u, v)
            for u, v in tree.edges
            if depth[v] == level
        ]
        if not edges:
            continue
        slowest = min(topology.edges[u, v]["bandwidth"] for u, v in edges)
        total += nbytes / slowest
    return total


def best_broadcast_time(
    nbytes: float,
    n_gpus: int,
    device: "DeviceSpec | str" = "V100",
    topology: nx.Graph | None = None,
) -> tuple[float, str]:
    """The better of PCIe fan-out and NVLink tree broadcast.

    Returns ``(seconds, strategy)``.  Large payloads favour NVLink (per
    level the links are 2-4x PCIe); tiny payloads favour direct PCIe
    (fewer store-and-forward rounds).
    """
    device = get_device(device)
    if topology is None:
        topology = (
            dgx1_topology() if device.name == "V100" else nvswitch_topology(n_gpus)
        )
    sub_nodes = list(topology.nodes)[:n_gpus]
    sub = topology.subgraph(sub_nodes).copy()
    if sub.number_of_nodes() > 1 and not nx.is_connected(sub):
        candidates = {"pcie": pcie_broadcast_time(nbytes, n_gpus, device)}
    else:
        candidates = {
            "pcie": pcie_broadcast_time(nbytes, n_gpus, device),
            "nvlink": nvlink_broadcast_time(nbytes, sub, device),
        }
    strategy = min(candidates, key=candidates.get)
    return candidates[strategy], strategy
