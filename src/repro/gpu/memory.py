"""Device-memory allocator with capacity accounting.

The multi-tile algorithm exists partly because "despite the limited device
memory, our algorithm can process arbitrary large ... problems" (Section
III-B).  To make that constraint real in the simulation, every device-side
array is allocated through :class:`DeviceMemory`, which enforces the
device's capacity and raises :class:`DeviceOutOfMemoryError` on exhaustion
— exactly the failure an untiled run would hit on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .device import DeviceSpec

__all__ = ["DeviceOutOfMemoryError", "DeviceAllocation", "DeviceMemory"]


class DeviceOutOfMemoryError(MemoryError):
    """Raised when an allocation exceeds the simulated device capacity."""

    def __init__(self, requested: int, available: int, device: str):
        self.requested = requested
        self.available = available
        self.device = device
        super().__init__(
            f"device {device}: out of memory "
            f"(requested {requested} B, {available} B available)"
        )


@dataclass
class DeviceAllocation:
    """Handle to one device-resident array.

    The backing storage is a real numpy array (the kernels do real math);
    the handle exists so the allocator can track and reclaim footprint.
    """

    array: np.ndarray
    label: str
    _pool: "DeviceMemory | None" = field(repr=False, default=None)
    reserved_bytes: int = 0  # for storage-less reservations

    @property
    def nbytes(self) -> int:
        return self.reserved_bytes if self.reserved_bytes else self.array.nbytes

    def free(self) -> None:
        """Return this allocation's bytes to the pool (idempotent)."""
        if self._pool is not None:
            self._pool._release(self)
            self._pool = None


class DeviceMemory:
    """Bump-accounted allocator for one simulated device.

    Not a real sub-allocator — numpy owns the bytes — but it provides the
    two behaviours the algorithms rely on: capacity enforcement and a
    high-water mark for reporting memory footprint per precision mode.
    """

    def __init__(self, device: DeviceSpec):
        self.device = device
        self.capacity = device.mem_capacity
        self.in_use = 0
        self.high_water = 0
        self._live: dict[int, DeviceAllocation] = {}

    def alloc(
        self, shape: tuple[int, ...] | int, dtype: np.dtype, label: str = ""
    ) -> DeviceAllocation:
        """Allocate a zero-initialised device array of ``shape``/``dtype``."""
        dtype = np.dtype(dtype)
        if isinstance(shape, int):
            shape = (shape,)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if self.in_use + nbytes > self.capacity:
            raise DeviceOutOfMemoryError(
                nbytes, self.capacity - self.in_use, self.device.name
            )
        arr = np.zeros(shape, dtype=dtype)
        handle = DeviceAllocation(array=arr, label=label, _pool=self)
        self.in_use += nbytes
        self.high_water = max(self.high_water, self.in_use)
        self._live[id(handle)] = handle
        return handle

    def reserve(self, nbytes: int, label: str = "") -> "DeviceAllocation":
        """Account ``nbytes`` of device footprint without backing storage.

        Used for working-set reservations (kernel intermediates whose
        numerics live in transient numpy temporaries): the capacity check
        and high-water tracking behave exactly as for real allocations.
        """
        if nbytes < 0:
            raise ValueError(f"cannot reserve negative bytes: {nbytes}")
        if self.in_use + nbytes > self.capacity:
            raise DeviceOutOfMemoryError(
                nbytes, self.capacity - self.in_use, self.device.name
            )
        handle = DeviceAllocation(
            array=np.empty(0, dtype=np.uint8), label=label or "reserved", _pool=self
        )
        # Track the reservation size explicitly (the backing array is empty).
        handle.reserved_bytes = nbytes
        self.in_use += nbytes
        self.high_water = max(self.high_water, self.in_use)
        self._live[id(handle)] = handle
        return handle

    def upload(self, host_array: np.ndarray, dtype=None, label: str = "") -> DeviceAllocation:
        """Copy a host array to the device (H2D), optionally converting dtype."""
        dtype = np.dtype(dtype) if dtype is not None else host_array.dtype
        handle = self.alloc(host_array.shape, dtype, label=label)
        handle.array[...] = host_array.astype(dtype, copy=False)
        return handle

    def _release(self, handle: DeviceAllocation) -> None:
        if id(handle) in self._live:
            del self._live[id(handle)]
            self.in_use -= handle.nbytes

    def free_all(self) -> None:
        """Release every live allocation (end-of-tile cleanup)."""
        for handle in list(self._live.values()):
            handle.free()

    @property
    def live_allocations(self) -> Iterator[DeviceAllocation]:
        return iter(self._live.values())

    def report(self) -> dict[str, int]:
        """Footprint summary for documentation/benchmarks."""
        return {
            "capacity": self.capacity,
            "in_use": self.in_use,
            "high_water": self.high_water,
            "n_live": len(self._live),
        }
