"""Calibration constants for the analytic performance model.

We have no physical V100/A100, so modelled execution times must be anchored
to the paper's published measurements.  Every constant below is derived
from a specific statement in the paper; the derivations are documented so
that the model stays auditable.

Anchors used (paper section in parentheses):

* Single-tile A100 FP64 at n=2^16, d=2^6, m=2^6 totals ~15 s with
  ``sort_&_incl_scan`` dominant at large d and ``dist_calc`` dominant at
  small d (Fig. 4).
* A100 FP64 is 54.0x faster, V100 FP64 41.6x faster, than the 16-core
  Skylake (MP)^N baseline (Fig. 6) => CPU at that size ~810 s.
* Reduced precision buys ~1.4x end-to-end on A100 "for common problem
  settings" (Section I); per-kernel DRAM/L1 utilisation drops with
  narrower types (Section V-C resource utilisation), which is why the
  speed-up is sub-linear in bit width.
* ``sort_&_incl_scan`` is dominated by synchronisation and benefits only
  minimally from reduced precision (Section V-C).
* Stream concurrency makes ~256 tiles slightly *faster* than 1 tile, after
  which CPU-side merge overhead wins (Fig. 7).

The efficiency table encodes the paper's utilisation observations: e.g.
"dist_calc [uses] over 80% DRAM [in FP64] ... around 60% [in FP32] ...
around 30% [in FP16-family]" — note 0.25x traffic at 0.375x efficiency
means FP16 dist_calc runs ~0.67x the FP64 time, not 0.25x, exactly the
sub-linear scaling the paper reports.
"""

from __future__ import annotations

__all__ = [
    "DRAM_EFFICIENCY",
    "L1_EFFICIENCY",
    "L2_EFFICIENCY",
    "SM_EFFICIENCY",
    "DEVICE_EFFICIENCY_SCALE",
    "CPU_CELL_TIME",
    "CPU_SORT_FACTOR",
    "MERGE_TIME_PER_ELEMENT",
    "TILE_DISPATCH_OVERHEAD",
    "STREAM_SETUP_OVERHEAD",
    "dram_efficiency",
    "l1_efficiency",
    "device_scale",
]

#: Achieved fraction of peak DRAM bandwidth, per kernel family and element
#: size in bytes (Section V-C utilisation numbers).
DRAM_EFFICIENCY: dict[str, dict[int, float]] = {
    "dist_calc": {8: 0.80, 4: 0.60, 2: 0.30},
    "update_mat_prof": {8: 0.80, 4: 0.70, 2: 0.50},
    "precalculation": {8: 0.70, 4: 0.60, 2: 0.40},
    "sort_&_incl_scan": {8: 0.60, 4: 0.45, 2: 0.30},
}

#: Achieved fraction of aggregate L1/TEX bandwidth for the shared-memory
#: resident sort/scan stages.  The paper's utilisation ratios ("over 80%
#: L1/TEX [FP64], around 40% [FP32], around 20% [FP16-family]") fix the
#: *relative* values; the absolute level is calibrated so the FP64 sort
#: lands on its Fig. 4 share (~6 s of the ~15 s total at d=2^6).  Traffic
#: shrinks with the dtype while the efficiency shrinks almost as fast
#: => near-constant sort time across precisions (Section V-C).
L1_EFFICIENCY: dict[int, float] = {8: 0.58, 4: 0.30, 2: 0.165}

#: Compute (SM) utilisation of the sort kernel ("around 70% compute (SM)")
#: — used for the stage-serialisation term.
SM_EFFICIENCY: float = 0.70

#: Per-device multiplier on achieved memory throughput.  The V100 code path
#: saturates its (smaller) HBM2 more fully than the A100 does HBM2e — the
#: paper's measured cross-generation gap is 54.0/41.6 = 1.30x, well below
#: the 1.73x raw-bandwidth ratio, so a per-device achievability factor is
#: required to land both anchors.
DEVICE_EFFICIENCY_SCALE: dict[str, float] = {
    "V100": 1.15,
    "A100": 0.90,
    "Skylake16": 1.0,
}

#: Effective fraction of L2 bandwidth when a tile's working set becomes
#: L2-resident (small tiles) — part of the Fig. 7 dip at ~256 tiles.
L2_EFFICIENCY: float = 0.70

#: CPU (MP)^N seconds per distance-matrix cell-dimension, FP64, before the
#: sort factor.  Anchor: A100 FP64 single-tile at n=2^16, d=2^6 models to
#: ~17 s (Fig. 4 shows ~15 s of kernel bars); 54.0x slower
#: => ~912 s = n^2 * d * c * (1 + 0.35*log2 d)  =>  c = 1.07e-9 s.
CPU_CELL_TIME: float = 1.07e-9

#: Relative extra CPU cost of the per-cell sort+scan work versus the
#: streaming update, per log2(d) factor (the CPU baseline sorts with
#: introsort; cost ~ d log d per column versus d for the update).
CPU_SORT_FACTOR: float = 0.35

#: CPU-side merge cost per matrix-profile element per merge operation
#: (~10 ns for the host-side min/argmin of Pseudocode 2 line 7).  Each
#: query column is merged once per covering row-split (sqrt(ntiles) of
#: them), so at n=2^16, d=2^6 the merge grows from ~0.04 s (1 tile) to
#: ~1.3 s (1024 tiles) — the late-upturn of Fig. 7.
MERGE_TIME_PER_ELEMENT: float = 2.0e-8

#: Host-side cost of preparing and dispatching one tile (stream selection,
#: argument marshalling, allocator churn).
TILE_DISPATCH_OVERHEAD: float = 2.0e-4

#: One-off cost of creating a CUDA stream (paper caps at 16 per GPU).
STREAM_SETUP_OVERHEAD: float = 1.0e-5


def dram_efficiency(kernel: str, itemsize: int) -> float:
    """Achieved DRAM-bandwidth fraction for ``kernel`` at ``itemsize`` bytes."""
    table = DRAM_EFFICIENCY.get(kernel)
    if table is None:
        table = DRAM_EFFICIENCY["precalculation"]
    return table.get(itemsize, table[8])


def l1_efficiency(itemsize: int) -> float:
    """Achieved L1/TEX-bandwidth fraction at ``itemsize`` bytes."""
    return L1_EFFICIENCY.get(itemsize, L1_EFFICIENCY[8])


def device_scale(device_name: str) -> float:
    """Per-device achievability multiplier on memory throughput."""
    return DEVICE_EFFICIENCY_SCALE.get(device_name, 1.0)
