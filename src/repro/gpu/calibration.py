"""Calibration constants for the analytic performance model.

We have no physical V100/A100, so modelled execution times must be anchored
to the paper's published measurements.  Every constant below is derived
from a specific statement in the paper; the derivations are documented so
that the model stays auditable.

Anchors used (paper section in parentheses):

* Single-tile A100 FP64 at n=2^16, d=2^6, m=2^6 totals ~15 s with
  ``sort_&_incl_scan`` dominant at large d and ``dist_calc`` dominant at
  small d (Fig. 4).
* A100 FP64 is 54.0x faster, V100 FP64 41.6x faster, than the 16-core
  Skylake (MP)^N baseline (Fig. 6) => CPU at that size ~810 s.
* Reduced precision buys ~1.4x end-to-end on A100 "for common problem
  settings" (Section I); per-kernel DRAM/L1 utilisation drops with
  narrower types (Section V-C resource utilisation), which is why the
  speed-up is sub-linear in bit width.
* ``sort_&_incl_scan`` is dominated by synchronisation and benefits only
  minimally from reduced precision (Section V-C).
* Stream concurrency makes ~256 tiles slightly *faster* than 1 tile, after
  which CPU-side merge overhead wins (Fig. 7).

The efficiency table encodes the paper's utilisation observations: e.g.
"dist_calc [uses] over 80% DRAM [in FP64] ... around 60% [in FP32] ...
around 30% [in FP16-family]" — note 0.25x traffic at 0.375x efficiency
means FP16 dist_calc runs ~0.67x the FP64 time, not 0.25x, exactly the
sub-linear scaling the paper reports.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = [
    "DRAM_EFFICIENCY",
    "L1_EFFICIENCY",
    "L2_EFFICIENCY",
    "SM_EFFICIENCY",
    "TC_EFFICIENCY",
    "DEVICE_EFFICIENCY_SCALE",
    "CPU_CELL_TIME",
    "CPU_SORT_FACTOR",
    "MERGE_TIME_PER_ELEMENT",
    "TILE_DISPATCH_OVERHEAD",
    "STREAM_SETUP_OVERHEAD",
    "dram_efficiency",
    "l1_efficiency",
    "device_scale",
    "CalibrationProfile",
    "default_profile",
    "save_profile",
    "load_profile",
    "measure_host_profile",
]

#: Achieved fraction of peak DRAM bandwidth, per kernel family and element
#: size in bytes (Section V-C utilisation numbers).
DRAM_EFFICIENCY: dict[str, dict[int, float]] = {
    "dist_calc": {8: 0.80, 4: 0.60, 2: 0.30},
    "update_mat_prof": {8: 0.80, 4: 0.70, 2: 0.50},
    "precalculation": {8: 0.70, 4: 0.60, 2: 0.40},
    "sort_&_incl_scan": {8: 0.60, 4: 0.45, 2: 0.30},
}

#: Achieved fraction of aggregate L1/TEX bandwidth for the shared-memory
#: resident sort/scan stages.  The paper's utilisation ratios ("over 80%
#: L1/TEX [FP64], around 40% [FP32], around 20% [FP16-family]") fix the
#: *relative* values; the absolute level is calibrated so the FP64 sort
#: lands on its Fig. 4 share (~6 s of the ~15 s total at d=2^6).  Traffic
#: shrinks with the dtype while the efficiency shrinks almost as fast
#: => near-constant sort time across precisions (Section V-C).
L1_EFFICIENCY: dict[int, float] = {8: 0.58, 4: 0.30, 2: 0.165}

#: Compute (SM) utilisation of the sort kernel ("around 70% compute (SM)")
#: — used for the stage-serialisation term.
SM_EFFICIENCY: float = 0.70

#: Achieved fraction of the dense tensor-core peak for the batched
#: small-GEMM update panels.  Small fragments (16x16x16) on a
#: memory-streaming kernel cannot feed the MMA pipes at the cuBLAS-style
#: large-GEMM rate; 60% matches published WMMA microbenchmarks for
#: k=16-chained accumulation chains.
TC_EFFICIENCY: float = 0.60

#: Per-device multiplier on achieved memory throughput.  The V100 code path
#: saturates its (smaller) HBM2 more fully than the A100 does HBM2e — the
#: paper's measured cross-generation gap is 54.0/41.6 = 1.30x, well below
#: the 1.73x raw-bandwidth ratio, so a per-device achievability factor is
#: required to land both anchors.
DEVICE_EFFICIENCY_SCALE: dict[str, float] = {
    "V100": 1.15,
    "A100": 0.90,
    "Skylake16": 1.0,
}

#: Effective fraction of L2 bandwidth when a tile's working set becomes
#: L2-resident (small tiles) — part of the Fig. 7 dip at ~256 tiles.
L2_EFFICIENCY: float = 0.70

#: CPU (MP)^N seconds per distance-matrix cell-dimension, FP64, before the
#: sort factor.  Anchor: A100 FP64 single-tile at n=2^16, d=2^6 models to
#: ~17 s (Fig. 4 shows ~15 s of kernel bars); 54.0x slower
#: => ~912 s = n^2 * d * c * (1 + 0.35*log2 d)  =>  c = 1.07e-9 s.
CPU_CELL_TIME: float = 1.07e-9

#: Relative extra CPU cost of the per-cell sort+scan work versus the
#: streaming update, per log2(d) factor (the CPU baseline sorts with
#: introsort; cost ~ d log d per column versus d for the update).
CPU_SORT_FACTOR: float = 0.35

#: CPU-side merge cost per matrix-profile element per merge operation
#: (~10 ns for the host-side min/argmin of Pseudocode 2 line 7).  Each
#: query column is merged once per covering row-split (sqrt(ntiles) of
#: them), so at n=2^16, d=2^6 the merge grows from ~0.04 s (1 tile) to
#: ~1.3 s (1024 tiles) — the late-upturn of Fig. 7.
MERGE_TIME_PER_ELEMENT: float = 2.0e-8

#: Host-side cost of preparing and dispatching one tile (stream selection,
#: argument marshalling, allocator churn).
TILE_DISPATCH_OVERHEAD: float = 2.0e-4

#: One-off cost of creating a CUDA stream (paper caps at 16 per GPU).
STREAM_SETUP_OVERHEAD: float = 1.0e-5


# ---------------------------------------------------------------------------
# Host-side calibration profiles (the autotuner's absolute-time anchor)
#
# The roofline tables above price the *modelled device*; the autotuner must
# also predict *host wall time*, because the kernels execute as real numpy
# on this machine.  A CalibrationProfile captures the handful of host
# constants that prediction needs — measured by `measure_host_profile`
# (the `repro calibrate` subcommand) and persisted as JSON so later runs
# start from measured constants instead of cold defaults.

#: Mode keys of the per-mode host tables, in ladder order.
_PROFILE_MODES = ("FP64", "FP32", "Mixed", "FP16", "FP16C")

#: Cold-start host seconds per distance-matrix cell-dimension, per mode.
#: numpy has no native half SIMD path, so the FP16-family modes are
#: *slower per cell on the host* even though the modelled device is
#: faster — exactly why the autotuner needs a host table separate from
#: the roofline tables.
_DEFAULT_SECONDS_PER_CELL: dict[str, float] = {
    "FP64": 1.2e-8,
    "FP32": 9.0e-9,
    "Mixed": 1.6e-8,
    "FP16": 2.4e-8,
    "FP16C": 4.0e-8,
}

#: Cold-start host cost of one row-block super-step (per-block python
#: dispatch: slicing, kernel-object churn, cost accounting).
_DEFAULT_SUPERSTEP_OVERHEAD: dict[str, float] = {
    "FP64": 2.0e-4,
    "FP32": 2.0e-4,
    "Mixed": 2.5e-4,
    "FP16": 2.5e-4,
    "FP16C": 3.0e-4,
}


@dataclass
class CalibrationProfile:
    """Measured host-execution constants for autotuner cost prediction.

    ``seconds_per_cell`` and ``superstep_overhead`` are per-mode tables
    (mode value -> seconds); the remaining fields are mode-independent.
    ``source`` records provenance: ``"default"`` (cold analytic guesses)
    or ``"measured"`` (written by :func:`measure_host_profile`).
    """

    device: str = "A100"
    seconds_per_cell: dict[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_SECONDS_PER_CELL)
    )
    superstep_overhead: dict[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_SUPERSTEP_OVERHEAD)
    )
    #: Fixed host cost per dispatched tile (planning, layout slicing,
    #: stream selection, result merge bookkeeping).
    tile_overhead: float = 1.5e-3
    #: Fixed host cost per extra worker thread (spawn + join + queue).
    worker_overhead: float = 5.0e-4
    #: Fraction of the ideal per-worker speedup the host thread pool
    #: achieves (1.0 = perfect scaling, 0.0 = no benefit; the GIL-bound
    #: dispatch layer keeps this well below 1 on most machines).
    parallel_efficiency: float = 0.55
    #: Row-block workspace bytes that stay cache-resident; larger blocks
    #: spill and pay ``spill_factor`` on the per-cell term.
    workspace_bytes: float = 8.0 * 1024 * 1024
    #: Per-cell slowdown multiplier once the block workspace has spilled
    #: far past ``workspace_bytes``.
    spill_factor: float = 1.6
    #: Host per-cell multiplier of the tensor-core main loop relative to
    #: the vector path at the same mode (the packed-panel GEMM update
    #: replaces the per-row streaming recurrence; < 1 means faster).
    tc_cell_factor: float = 0.5
    #: Host super-step multiplier of the tensor-core main loop (panel
    #: packing, shear gathers and chained-GEMM dispatch per block cost
    #: more python than the vector super-step).
    tc_step_factor: float = 1.5
    source: str = "default"

    def cell_time(self, mode) -> float:
        """Host seconds per cell-dimension at ``mode`` (falls back to FP64)."""
        key = getattr(mode, "value", str(mode))
        return self.seconds_per_cell.get(key, self.seconds_per_cell["FP64"])

    def step_time(self, mode) -> float:
        """Host seconds per row-block super-step at ``mode``."""
        key = getattr(mode, "value", str(mode))
        return self.superstep_overhead.get(key, self.superstep_overhead["FP64"])

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CalibrationProfile":
        data = json.loads(text)
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


def default_profile(device: str = "A100") -> CalibrationProfile:
    """The cold-start profile (analytic guesses, ``source='default'``)."""
    return CalibrationProfile(device=str(getattr(device, "name", device)))


def save_profile(profile: CalibrationProfile, path) -> Path:
    """Persist ``profile`` as JSON; returns the written path."""
    path = Path(path)
    path.write_text(profile.to_json())
    return path


def load_profile(path) -> CalibrationProfile:
    """Load a profile written by :func:`save_profile`."""
    return CalibrationProfile.from_json(Path(path).read_text())


def measure_host_profile(
    device: str = "A100",
    modes=_PROFILE_MODES,
    n_seg: int = 160,
    d: int = 4,
    m: int = 24,
    repeats: int = 2,
    clock=None,
) -> CalibrationProfile:
    """Measure the host constants by timing small probe runs.

    Per mode, times one self-join tile at ``row_block=1`` versus a fully
    blocked run: the difference isolates the per-super-step overhead, the
    blocked time (minus overheads) yields the per-cell rate.  A pair of
    4-tile runs at 1 versus 2 workers fits the thread-pool efficiency.
    Probe sizes are deliberately tiny (sub-second total) — the constants
    feed *relative* candidate ranking, where small-sample noise washes
    out against the 2-10x effects being ranked.
    """
    import time

    import numpy as np

    from ..core.config import RunConfig
    from ..core.multi_tile import compute_multi_tile
    from ..core.single_tile import compute_single_tile

    clock = clock or time.perf_counter
    rng = np.random.default_rng(7)
    series = rng.standard_normal((n_seg + m - 1, d)).cumsum(axis=0)
    tiny = series[: 4 * m + m - 1]

    def timed(fn, *args, **kwargs) -> float:
        best = math.inf
        for _ in range(max(repeats, 1)):
            t0 = clock()
            fn(*args, **kwargs)
            best = min(best, clock() - t0)
        return best

    profile = default_profile(device)
    cells = float(n_seg) * n_seg * d
    blocked = max(32, n_seg)
    steps_blocked = math.ceil(n_seg / blocked)
    tile_overheads = []
    for mode in modes:
        base = RunConfig(mode=mode, device=device)
        t_tiny = timed(
            compute_single_tile, tiny, None, m, base.with_(row_block=blocked)
        )
        t_rowed = timed(
            compute_single_tile, series, None, m, base.with_(row_block=1)
        )
        t_block = timed(
            compute_single_tile, series, None, m, base.with_(row_block=blocked)
        )
        steps = n_seg - steps_blocked
        step = max((t_rowed - t_block) / max(steps, 1), 1e-7)
        overhead = steps_blocked * step + t_tiny
        spc = max((t_block - overhead) / cells, 1e-10)
        key = getattr(mode, "value", str(mode))
        profile.seconds_per_cell[key] = spc
        profile.superstep_overhead[key] = step
        tile_overheads.append(t_tiny)
    profile.tile_overhead = max(min(tile_overheads), 1e-5)

    cfg = RunConfig(mode="FP64", device=device, n_tiles=4)
    t_serial = timed(compute_multi_tile, series, None, m, cfg)
    t_pair = timed(compute_multi_tile, series, None, m, cfg, parallel_workers=2)
    # t(w) = serial / (1 + eff*(w-1))  =>  eff = serial/t(w) - 1 at w=2.
    if t_pair > 0:
        profile.parallel_efficiency = min(max(t_serial / t_pair - 1.0, 0.0), 1.0)
    profile.source = "measured"
    return profile


def dram_efficiency(kernel: str, itemsize: int) -> float:
    """Achieved DRAM-bandwidth fraction for ``kernel`` at ``itemsize`` bytes."""
    table = DRAM_EFFICIENCY.get(kernel)
    if table is None:
        table = DRAM_EFFICIENCY["precalculation"]
    return table.get(itemsize, table[8])


def l1_efficiency(itemsize: int) -> float:
    """Achieved L1/TEX-bandwidth fraction at ``itemsize`` bytes."""
    return L1_EFFICIENCY.get(itemsize, L1_EFFICIENCY[8])


def device_scale(device_name: str) -> float:
    """Per-device achievability multiplier on memory throughput."""
    return DEVICE_EFFICIENCY_SCALE.get(device_name, 1.0)
