"""Device models for the simulated GPU substrate.

The paper's evaluation (Section V-A) runs on:

* **NVIDIA Tesla V100** (DGX-1 at LRZ): 7.8 TFLOP/s FP64, 32 GB HBM2,
  900 GB/s, 80 SMs; tuned launch config grid=64, block=2560
  (163,840 threads = 80 SMs x 64 warps x 32 threads).
* **NVIDIA Tesla A100** (Raven at MPCDF): 9.7 TFLOP/s FP64, 40 GB HBM2e,
  1,555 GB/s, 108 SMs; tuned launch config grid=64, block=3456
  (221,184 threads = 108 SMs x 64 warps x 32 threads).
* **Intel 16-core Skylake CPU** as the (MP)^N baseline host.

A :class:`DeviceSpec` carries exactly the figures the roofline performance
model needs.  Since we have no physical GPU, devices are *simulated*: the
kernels execute real numpy arithmetic while the spec drives modelled time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DeviceSpec",
    "V100",
    "A100",
    "RTX3090",
    "SKYLAKE16",
    "DEVICES",
    "get_device",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware description of one compute device.

    Attributes mirror the datasheet numbers quoted in Section V-A.
    Throughput fields are in *base* units (FLOP/s, bytes/s).
    """

    name: str
    kind: str  # "gpu" or "cpu"
    n_sms: int
    warps_per_sm: int
    threads_per_warp: int
    peak_flops_fp64: float
    peak_flops_fp32: float
    peak_flops_fp16: float
    mem_bandwidth: float  # bytes/s (HBM / DRAM)
    mem_capacity: int  # bytes
    l2_bandwidth: float  # bytes/s, effective
    l2_capacity: int  # bytes of last-level on-chip cache
    l1_bandwidth: float  # bytes/s aggregate L1/TEX or shared-memory
    sync_latency: float  # seconds per coarse-grained group synchronisation
    kernel_launch_overhead: float  # seconds per kernel launch
    pcie_bandwidth: float  # bytes/s host<->device
    max_streams: int = 16
    #: Dense FP16-multiply / FP32-accumulate tensor-core peak (FLOP/s).
    #: Zero means the device has no tensor cores (pre-Volta, CPU).
    peak_flops_tc: float = 0.0
    #: The WMMA fragment shape (m, n, k) of one MMA instruction.  Every
    #: shipping NVIDIA part exposes the 16x16x16 FP16 tile at warp scope.
    mma_shape: tuple[int, int, int] = (16, 16, 16)
    extras: dict = field(default_factory=dict, compare=False)

    @property
    def max_threads(self) -> int:
        """Hardware thread capacity = SMs x warps/SM x threads/warp."""
        return self.n_sms * self.warps_per_sm * self.threads_per_warp

    @property
    def peak_flops_table(self) -> dict[int, float]:
        """Itemsize (bytes) -> peak vector throughput.  The authoritative
        mapping behind :meth:`peak_flops`; the performance model reads it
        so an unsupported itemsize fails loudly instead of silently
        pricing at the FP16 rate."""
        return {
            8: self.peak_flops_fp64,
            4: self.peak_flops_fp32,
            2: self.peak_flops_fp16,
        }

    @property
    def has_tensor_cores(self) -> bool:
        """Whether the device exposes an MMA unit (``peak_flops_tc > 0``)."""
        return self.peak_flops_tc > 0.0

    def peak_flops(self, itemsize: int) -> float:
        """Peak arithmetic throughput for the element size in bytes.

        Only the three IEEE sizes the precision modes use are valid;
        anything else (e.g. a hypothetical FP8 itemsize of 1) raises
        rather than silently pricing at the FP16 rate.
        """
        try:
            return self.peak_flops_table[int(itemsize)]
        except KeyError:
            valid = ", ".join(str(k) for k in sorted(self.peak_flops_table))
            raise ValueError(
                f"unsupported itemsize {itemsize!r}; expected one of: {valid}"
            ) from None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


# Datasheet values from the paper (Section V-A) supplemented with public
# NVIDIA specifications for the fields the paper does not quote directly
# (FP32/FP16 peaks, L1/L2 bandwidth, PCIe gen3 x16).  The sync latency and
# launch overhead are calibration constants (see calibration.py).
V100 = DeviceSpec(
    name="V100",
    kind="gpu",
    n_sms=80,
    warps_per_sm=64,
    threads_per_warp=32,
    peak_flops_fp64=7.8e12,
    peak_flops_fp32=15.7e12,
    peak_flops_fp16=31.4e12,
    mem_bandwidth=900e9,
    mem_capacity=32 * 1024**3,
    l2_bandwidth=2.5e12,
    l2_capacity=6 * 1024**2,
    l1_bandwidth=12.0e12,
    sync_latency=0.13e-6,
    kernel_launch_overhead=4.0e-6,
    pcie_bandwidth=12e9,
    peak_flops_tc=125e12,  # 1st-gen tensor cores, dense FP16/FP32 WMMA
)

A100 = DeviceSpec(
    name="A100",
    kind="gpu",
    n_sms=108,
    warps_per_sm=64,
    threads_per_warp=32,
    peak_flops_fp64=9.7e12,
    peak_flops_fp32=19.5e12,
    peak_flops_fp16=78.0e12,
    mem_bandwidth=1555e9,
    mem_capacity=40 * 1024**3,
    l2_bandwidth=4.8e12,
    l2_capacity=40 * 1024**2,
    l1_bandwidth=19.0e12,
    sync_latency=0.10e-6,
    kernel_launch_overhead=3.5e-6,
    pcie_bandwidth=24e9,
    peak_flops_tc=312e12,  # 3rd-gen tensor cores, dense FP16/FP32 MMA
)

# Consumer-tier preset (GeForce RTX 3090, GA102): what a workstation user
# without data-centre parts would run the tensor-core path on.  FP64 is
# 1/64 rate on GA102; FP16 vector rate equals FP32 (2:1 packing is the
# tensor-core unit's job on consumer Ampere).
RTX3090 = DeviceSpec(
    name="RTX3090",
    kind="gpu",
    n_sms=82,
    warps_per_sm=48,
    threads_per_warp=32,
    peak_flops_fp64=0.556e12,
    peak_flops_fp32=35.6e12,
    peak_flops_fp16=35.6e12,
    mem_bandwidth=936e9,
    mem_capacity=24 * 1024**3,
    l2_bandwidth=3.0e12,
    l2_capacity=6 * 1024**2,
    l1_bandwidth=14.0e12,
    sync_latency=0.12e-6,
    kernel_launch_overhead=3.8e-6,
    pcie_bandwidth=24e9,
    peak_flops_tc=71e12,  # dense FP16/FP32; GeForce halves FP32-accumulate
)

# The CPU baseline "device": an Intel 16-core Skylake node running the
# (MP)^N reference.  Peak figures: 16 cores x 2 AVX-512 FMA units x 8 lanes
# x 2 (FMA) x ~2.3 GHz ~= 1.2 TFLOP/s FP64; 6-channel DDR4-2666 ~= 128 GB/s.
SKYLAKE16 = DeviceSpec(
    name="Skylake16",
    kind="cpu",
    n_sms=16,  # cores
    warps_per_sm=2,  # HW threads per core
    threads_per_warp=1,
    peak_flops_fp64=1.2e12,
    peak_flops_fp32=2.4e12,
    peak_flops_fp16=2.4e12,  # no native FP16; executes at FP32 rate
    mem_bandwidth=128e9,
    mem_capacity=192 * 1024**3,
    l2_bandwidth=800e9,
    l2_capacity=22 * 1024**2,  # shared L3
    l1_bandwidth=4.0e12,
    sync_latency=0.2e-6,
    kernel_launch_overhead=0.0,
    pcie_bandwidth=0.0,  # host-resident
    max_streams=1,
)

DEVICES: dict[str, DeviceSpec] = {
    spec.name.lower(): spec for spec in (V100, A100, RTX3090, SKYLAKE16)
}


def get_device(name: "str | DeviceSpec") -> DeviceSpec:
    """Look up a device spec by name (``"V100"``, ``"A100"``, ``"Skylake16"``)."""
    if isinstance(name, DeviceSpec):
        return name
    try:
        return DEVICES[name.lower()]
    except KeyError:
        valid = ", ".join(sorted(DEVICES))
        raise ValueError(f"unknown device {name!r}; expected one of: {valid}") from None
