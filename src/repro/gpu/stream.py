"""CUDA-stream-style asynchronous execution model.

The implementation in the paper relies on the CUDA Stream Management API
for *implicit synchronisation*: "all the data transfers and kernel
executions rely on CUDA streams.  We use maximal 16 non-blocking streams on
one GPU" (Section IV).  Streams let tile uploads/downloads overlap with
kernel execution of other tiles, which is the source of the initial
speed-up when going from 1 to ~256 tiles in Fig. 7.

This module is a small discrete-event scheduler reproducing that behaviour:

* each device has three exclusive engines — ``compute`` (the SMs), ``h2d``
  and ``d2h`` (the two DMA copy engines);
* a :class:`Stream` imposes sequential ordering on the operations submitted
  to it;
* operations start at ``max(stream ready, engine ready)`` — exactly the
  semantics of in-order streams on hardware with dedicated copy engines.

Durations are supplied by the performance model; this module only does the
scheduling arithmetic and keeps the :class:`Timeline` record.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StreamOp", "Stream", "DeviceQueues", "Timeline"]

ENGINES = ("compute", "h2d", "d2h")


@dataclass(frozen=True)
class StreamOp:
    """One scheduled operation on a device timeline.

    ``end`` includes the trailing latency overhead (launch gaps, syncs);
    ``busy`` is the engine-exclusive portion only.
    """

    device: str
    device_index: int
    stream: int
    engine: str  # "compute" | "h2d" | "d2h"
    label: str
    start: float
    end: float
    overhead: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def busy(self) -> float:
        return max(self.duration - self.overhead, 0.0)


@dataclass
class Timeline:
    """Complete record of a simulated multi-GPU execution."""

    ops: list[StreamOp] = field(default_factory=list)

    def add(self, op: StreamOp) -> None:
        self.ops.append(op)

    def extend(self, other: "Timeline") -> None:
        self.ops.extend(other.ops)

    @property
    def makespan(self) -> float:
        """End-to-end simulated time (the metric figures report)."""
        return max((op.end for op in self.ops), default=0.0)

    def device_busy_time(self, device_index: int, engine: str = "compute") -> float:
        return sum(
            op.duration
            for op in self.ops
            if op.device_index == device_index and op.engine == engine
        )

    def kernel_breakdown(self) -> dict[str, float]:
        """Total compute time per kernel label prefix (Fig. 4 / Fig. 5 bars).

        Labels are ``"<kernel>:<detail>"``; the prefix before the colon
        groups invocations of the same kernel.
        """
        out: dict[str, float] = {}
        for op in self.ops:
            if op.engine != "compute":
                continue
            key = op.label.split(":", 1)[0]
            out[key] = out.get(key, 0.0) + op.duration
        return out

    def transfer_time(self) -> float:
        return sum(op.duration for op in self.ops if op.engine in ("h2d", "d2h"))


class DeviceQueues:
    """Engine-availability bookkeeping for one device."""

    def __init__(self, name: str, index: int):
        self.name = name
        self.index = index
        self.engine_ready: dict[str, float] = {engine: 0.0 for engine in ENGINES}

    def schedule(
        self,
        stream: "Stream",
        engine: str,
        label: str,
        duration: float,
        timeline: Timeline,
        overhead: float = 0.0,
    ) -> StreamOp:
        """Place one operation; returns the scheduled record.

        ``duration`` occupies the engine exclusively (throughput cost);
        ``overhead`` extends only the issuing stream's ready time (latency
        cost: kernel-launch gaps and coarse-grained synchronisation stalls).
        With a single stream, overheads land in the makespan; with many
        concurrent streams, other tiles' kernels fill the gaps — this is
        exactly the concurrency benefit the paper attributes to using up to
        16 non-blocking streams (Fig. 7, 1 -> 256 tiles).
        """
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if duration < 0 or overhead < 0:
            raise ValueError(f"negative time for {label!r}")
        start = max(stream.ready, self.engine_ready[engine])
        self.engine_ready[engine] = start + duration
        stream.ready = start + duration + overhead
        op = StreamOp(
            device=self.name,
            device_index=self.index,
            stream=stream.stream_id,
            engine=engine,
            label=label,
            start=start,
            end=start + duration + overhead,
            overhead=overhead,
        )
        timeline.add(op)
        return op


@dataclass
class PendingOp:
    """An operation enqueued on a stream but not yet placed on an engine."""

    engine: str
    label: str
    busy: float
    overhead: float = 0.0


@dataclass
class Stream:
    """An in-order, non-blocking command stream bound to one device."""

    device: DeviceQueues
    stream_id: int
    ready: float = 0.0  # time at which the next op in this stream may start
    pending: list[PendingOp] = field(default_factory=list)

    def enqueue(
        self, engine: str, label: str, busy: float, overhead: float = 0.0
    ) -> None:
        """Queue an op for event-driven placement by ``flush_streams``.

        Immediate placement (``h2d``/``d2h``/``kernel``) schedules in call
        order, which cannot backfill engine idle gaps with later-submitted
        streams' work the way hardware does; enqueue + flush performs a
        proper earliest-start greedy simulation across all streams.
        """
        self.pending.append(PendingOp(engine, label, busy, overhead))

    def h2d(self, label: str, duration: float, timeline: Timeline) -> StreamOp:
        return self.device.schedule(self, "h2d", label, duration, timeline)

    def d2h(self, label: str, duration: float, timeline: Timeline) -> StreamOp:
        return self.device.schedule(self, "d2h", label, duration, timeline)

    def kernel(
        self, label: str, duration: float, timeline: Timeline, overhead: float = 0.0
    ) -> StreamOp:
        return self.device.schedule(
            self, "compute", label, duration, timeline, overhead=overhead
        )


def flush_streams(streams: "list[Stream]", timeline: Timeline) -> None:
    """Event-driven placement of all pending ops of one device's streams.

    Repeatedly schedules, among the head ops of every stream's queue, the
    one that can start earliest (``max(stream ready, engine ready)``; ties
    broken by stream id).  This models the hardware scheduler's ability to
    backfill one stream's launch/sync gaps with another stream's kernels —
    the concurrency effect the paper exploits with up to 16 non-blocking
    streams per GPU.
    """
    if not streams:
        return
    device = streams[0].device
    if any(s.device is not device for s in streams):
        raise ValueError("flush_streams requires streams of a single device")
    cursors = {s.stream_id: 0 for s in streams}
    remaining = sum(len(s.pending) for s in streams)
    while remaining:
        best: Stream | None = None
        best_start = float("inf")
        for s in streams:
            i = cursors[s.stream_id]
            if i >= len(s.pending):
                continue
            op = s.pending[i]
            start = max(s.ready, device.engine_ready[op.engine])
            if start < best_start or (
                best is not None
                and start == best_start
                and s.stream_id < best.stream_id
            ):
                best = s
                best_start = start
        assert best is not None
        op = best.pending[cursors[best.stream_id]]
        device.schedule(best, op.engine, op.label, op.busy, timeline, op.overhead)
        cursors[best.stream_id] += 1
        remaining -= 1
    for s in streams:
        s.pending.clear()
