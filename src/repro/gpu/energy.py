"""Energy model: what reduced precision buys in joules.

HPC operators care about energy at least as much as time; the paper's
motivation ("efficient usage of the GPU memory bandwidth") translates
directly into an energy argument because a memory-bound kernel burns
near-TDP power for its whole runtime regardless of arithmetic width —
so the FP16-family's 1.4x time saving is, to first order, a 1.4x energy
saving.  This module provides that estimate over modelled timelines:
board power per device state (busy vs idle) integrated over the
simulated ops.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.result import MatrixProfileResult
from .device import DeviceSpec, get_device

__all__ = ["POWER_SPECS", "PowerSpec", "EnergyEstimate", "estimate_energy"]


@dataclass(frozen=True)
class PowerSpec:
    """Board power characteristics (datasheet TDP, measured-idle typical)."""

    tdp: float  # watts at full load
    idle: float  # watts idle
    busy_fraction_memory_bound: float = 0.85  # memory-bound kernels draw
    # slightly below TDP (no FP pipe saturation)


POWER_SPECS: dict[str, PowerSpec] = {
    "V100": PowerSpec(tdp=300.0, idle=40.0),
    "A100": PowerSpec(tdp=400.0, idle=50.0),
    "Skylake16": PowerSpec(tdp=150.0, idle=30.0, busy_fraction_memory_bound=0.9),
}


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy breakdown of one modelled run."""

    device: str
    n_gpus: int
    busy_energy: float  # joules while kernels execute
    idle_energy: float  # joules while a GPU waits inside the makespan
    total_energy: float
    average_power: float  # watts across the makespan

    @property
    def kilojoules(self) -> float:
        return self.total_energy / 1e3


def estimate_energy(
    result: MatrixProfileResult, device: "DeviceSpec | str | None" = None
) -> EnergyEstimate:
    """Integrate modelled power over a result's timeline.

    Every GPU draws ``busy_fraction * TDP`` during its compute ops and
    ``idle`` power for the rest of the makespan (it cannot power down
    mid-job).  Transfers are charged at idle + 10% TDP (DMA engines).
    """
    if device is None:
        device_name = result.timeline.ops[0].device if result.timeline.ops else "A100"
    else:
        device_name = get_device(device).name
    spec = POWER_SPECS.get(device_name)
    if spec is None:
        raise ValueError(f"no power spec for device {device_name!r}")

    makespan = result.timeline.makespan
    n_gpus = max(result.n_gpus, 1)
    busy_power = spec.busy_fraction_memory_bound * spec.tdp
    transfer_power = 0.1 * spec.tdp

    busy_energy = 0.0
    transfer_energy = 0.0
    busy_per_gpu = {g: 0.0 for g in range(n_gpus)}
    for op in result.timeline.ops:
        if op.engine == "compute":
            busy_energy += op.busy * busy_power
            busy_per_gpu[op.device_index] = (
                busy_per_gpu.get(op.device_index, 0.0) + op.busy
            )
        else:
            transfer_energy += op.busy * transfer_power

    idle_energy = sum(
        max(makespan - busy, 0.0) * spec.idle for busy in busy_per_gpu.values()
    )
    total = busy_energy + idle_energy + transfer_energy
    average = total / makespan / n_gpus if makespan > 0 else 0.0
    return EnergyEstimate(
        device=device_name,
        n_gpus=n_gpus,
        busy_energy=busy_energy,
        idle_energy=idle_energy,
        total_energy=total,
        average_power=average,
    )
