"""Numerical accuracy metrics (Section V-A, first set).

* **Recall rate R** — the ratio of matrix profile *indices* that match the
  reference calculation exactly.
* **Relative accuracy A = 1 − E** — where E is the relative discrepancy of
  the matrix profile *values* against the FP64 reference, reported in
  percent.  A is clamped at 0 (FP16 errors can exceed 100% relative error,
  and the paper's plots bottom out near 0/5%).
"""

from __future__ import annotations

import numpy as np

__all__ = ["recall_rate", "relative_error", "relative_accuracy"]


def _valid_mask(reference: np.ndarray) -> np.ndarray:
    return np.isfinite(reference)


def recall_rate(index: np.ndarray, index_ref: np.ndarray) -> float:
    """Fraction of matching matrix profile indices, in percent.

    Entries where the reference index is -1 (excluded columns) are ignored.
    """
    index = np.asarray(index)
    index_ref = np.asarray(index_ref)
    if index.shape != index_ref.shape:
        raise ValueError(f"shape mismatch: {index.shape} vs {index_ref.shape}")
    valid = index_ref >= 0
    if not valid.any():
        return 100.0
    return float(np.mean(index[valid] == index_ref[valid]) * 100.0)


def relative_error(profile: np.ndarray, profile_ref: np.ndarray) -> float:
    """Mean relative discrepancy E of profile values vs the reference.

    Near-zero reference distances (perfect matches) are compared against
    the mean reference magnitude instead, to keep E finite — these are
    exactly the ill-conditioned entries of Section V-B.
    """
    profile = np.asarray(profile, dtype=np.float64)
    profile_ref = np.asarray(profile_ref, dtype=np.float64)
    if profile.shape != profile_ref.shape:
        raise ValueError(f"shape mismatch: {profile.shape} vs {profile_ref.shape}")
    valid = _valid_mask(profile_ref)
    if not valid.any():
        return 0.0
    ref = profile_ref[valid]
    test = np.where(np.isfinite(profile[valid]), profile[valid], 0.0)
    scale_floor = max(float(np.mean(np.abs(ref))), np.finfo(np.float64).tiny)
    denom = np.maximum(np.abs(ref), 1e-3 * scale_floor)
    return float(np.mean(np.abs(test - ref) / denom))


def relative_accuracy(profile: np.ndarray, profile_ref: np.ndarray) -> float:
    """A = (1 − E) in percent, clamped to [0, 100]."""
    err = relative_error(profile, profile_ref)
    return float(np.clip((1.0 - err) * 100.0, 0.0, 100.0))
