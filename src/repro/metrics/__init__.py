"""Accuracy metrics of Section V-A: numerical (R, A), practical
(R_embedded, relaxed recall) and classification (F-score)."""

from .classification import (
    accuracy,
    confusion_matrix,
    macro_f_score,
    precision_recall_f1,
)
from .numerical import recall_rate, relative_accuracy, relative_error
from .practical import detection_hits, embedded_motif_recall, relaxed_recall

__all__ = [
    "recall_rate",
    "relative_accuracy",
    "relative_error",
    "detection_hits",
    "embedded_motif_recall",
    "relaxed_recall",
    "accuracy",
    "confusion_matrix",
    "macro_f_score",
    "precision_recall_f1",
]
