"""Classification metrics (Section V-A: F-score for classification).

The HPC-ODA case study scores a nearest-neighbour classifier with the
F-score — the harmonic mean of precision and recall (Tharwat, 2020) —
averaged over classes (macro) to be robust to class imbalance.
"""

from __future__ import annotations

import numpy as np

__all__ = ["confusion_matrix", "precision_recall_f1", "macro_f_score", "accuracy"]


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None
) -> np.ndarray:
    """(n_classes, n_classes) counts; rows = true class, cols = predicted."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if n_classes is None:
        n_classes = int(max(y_true.max(initial=-1), y_pred.max(initial=-1))) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-class precision, recall and F1 (zero where undefined)."""
    cm = confusion_matrix(y_true, y_pred, n_classes)
    tp = np.diag(cm).astype(np.float64)
    predicted = cm.sum(axis=0).astype(np.float64)
    actual = cm.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, tp / predicted, 0.0)
        recall = np.where(actual > 0, tp / actual, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2.0 * precision * recall / denom, 0.0)
    return precision, recall, f1


def macro_f_score(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None
) -> float:
    """Macro-averaged F-score over classes that actually occur in y_true."""
    cm = confusion_matrix(y_true, y_pred, n_classes)
    _, _, f1 = precision_recall_f1(y_true, y_pred, cm.shape[0])
    present = cm.sum(axis=1) > 0
    if not present.any():
        return 0.0
    return float(f1[present].mean())


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Plain fraction of correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))
