"""Practical accuracy metrics (Section V-A, second set).

* **R_embedded** — recall of embedded-motif detection: for every planted
  motif pair the matrix profile index at the query occurrence must point
  exactly at the reference occurrence.
* **R^r_embedded** — the relaxed variant: a detection within
  ``r * m`` samples of the true position counts, with relaxation factor
  ``r`` a tunable hyperparameter (the turbine study uses r = 5%).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..datasets.synthetic import EmbeddedMotif

__all__ = [
    "embedded_motif_recall",
    "relaxed_recall",
    "detection_hits",
]


def detection_hits(
    index: np.ndarray,
    query_positions: Sequence[int],
    ref_positions: Sequence[int],
    m: int,
    k: int = 1,
    relaxation: float = 0.0,
    search_radius: int | None = None,
) -> list[bool]:
    """Per-motif detection outcomes.

    For motif ``t`` the detected reference position is
    ``index[query_positions[t], k-1]`` — but index flips of a few samples
    around the query occurrence are tolerated by scanning a small
    neighbourhood (``search_radius``, default m//8) for the *best-agreeing*
    segment, since z-normalised matching can lock on a sample or two off.

    A hit requires ``|detected - ref_positions[t]| <= max(1, relaxation*m)``
    — the floor of one sample absorbs the alignment jitter that noisy
    embeddings legitimately introduce even in exact arithmetic.
    """
    index = np.asarray(index)
    if index.ndim != 2:
        raise ValueError(f"index must be (n_q_seg, d), got shape {index.shape}")
    n_q_seg = index.shape[0]
    radius = m // 8 if search_radius is None else search_radius
    tol = max(1.0, relaxation * m)
    hits = []
    for q_pos, r_pos in zip(query_positions, ref_positions):
        lo = max(0, q_pos - radius)
        hi = min(n_q_seg, q_pos + radius + 1)
        if lo >= hi:
            hits.append(False)
            continue
        window = index[lo:hi, k - 1]
        # Offsets of the query probe propagate to the match location: probe
        # at q_pos+delta should match r_pos+delta.
        expected = r_pos + (np.arange(lo, hi) - q_pos)
        deviation = np.abs(window.astype(np.int64) - expected)
        hits.append(bool(np.min(deviation) <= tol))
    return hits


def embedded_motif_recall(
    index: np.ndarray,
    motifs: Sequence[EmbeddedMotif],
    k: int = 1,
    relaxation: float = 0.0,
) -> float:
    """R_embedded (or R^r_embedded if ``relaxation`` > 0), in percent."""
    if not motifs:
        return 100.0
    m = motifs[0].length
    hits = detection_hits(
        index,
        [mo.query_pos for mo in motifs],
        [mo.ref_pos for mo in motifs],
        m,
        k=k,
        relaxation=relaxation,
    )
    return float(np.mean(hits) * 100.0)


def relaxed_recall(
    index: np.ndarray,
    query_positions: Sequence[int],
    ref_positions: Sequence[int],
    m: int,
    relaxation: float = 0.05,
    k: int = 1,
) -> float:
    """R^r_embedded for explicit position lists (turbine case study), %."""
    if len(query_positions) == 0:
        return 100.0
    hits = detection_hits(
        index, query_positions, ref_positions, m, k=k, relaxation=relaxation
    )
    return float(np.mean(hits) * 100.0)
