"""Dataset generators: synthetic stress tests (Fig. 2/3/7) and substitutes
for the three real-world case studies (HPC-ODA, GIAB genome, gas turbines)."""

from .applications import (
    GRID_EVENT_TYPES,
    PMUDataset,
    SeismicDataset,
    make_pmu_dataset,
    make_seismic_dataset,
)
from .genome import ENCODING, GenomeDataset, encode_bases, make_genome_dataset
from .music import PITCH_CLASSES, ChromaSong, make_chroma_song
from .hpcoda import (
    APPLICATION_CLASSES,
    SENSOR_NAMES,
    HPCODataset,
    make_hpcoda_dataset,
)
from .patterns import PATTERN_NAMES, all_patterns, generate_pattern
from .synthetic import (
    EmbeddedMotif,
    StressDataset,
    make_stress_dataset,
    noise_series,
)
from .turbine import (
    PAIR_CATEGORIES,
    PairCategory,
    TurbineSeries,
    make_turbine_pairs,
    make_turbine_series,
    startup_pattern,
)

__all__ = [
    "GRID_EVENT_TYPES",
    "PMUDataset",
    "SeismicDataset",
    "make_pmu_dataset",
    "make_seismic_dataset",
    "PITCH_CLASSES",
    "ChromaSong",
    "make_chroma_song",
    "PATTERN_NAMES",
    "all_patterns",
    "generate_pattern",
    "EmbeddedMotif",
    "StressDataset",
    "make_stress_dataset",
    "noise_series",
    "APPLICATION_CLASSES",
    "SENSOR_NAMES",
    "HPCODataset",
    "make_hpcoda_dataset",
    "ENCODING",
    "GenomeDataset",
    "encode_bases",
    "make_genome_dataset",
    "PAIR_CATEGORIES",
    "PairCategory",
    "TurbineSeries",
    "make_turbine_pairs",
    "make_turbine_series",
    "startup_pattern",
]
