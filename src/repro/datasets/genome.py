"""Synthetic genome sequences for the GIAB case study (Section VI-B).

The paper analyses Genome-in-a-Bottle data (Chinese trio vs GRCh37): 16
chromosomes are encoded as a 16-dimensional series with the mapping
A->1, C->2, T->3, G->4 and mined with n=2^18, d=2^4, m=2^7 (m chosen at
the shortest practical gene length).  We cannot download GIAB, so this
module generates synthetic chromosomes: i.i.d. base soup with embedded
"genes" — conserved subsequences planted in both the reference and query
genomes (with optional point mutations, mimicking variant calls) — which
is exactly the repeated-pattern structure matrix profile mining exploits.

The small alphabet {1, 2, 3, 4} keeps every value exactly representable
even in FP16, which is why the paper highlights DNA mining as especially
amenable to reduced precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ENCODING", "encode_bases", "GenomeDataset", "make_genome_dataset"]

#: The paper's transformation relation (Section VI-B).
ENCODING = {"A": 1.0, "C": 2.0, "T": 3.0, "G": 4.0}

_BASES = np.array(["A", "C", "T", "G"])
_CODES = np.array([ENCODING[b] for b in _BASES])


def encode_bases(sequence: str) -> np.ndarray:
    """Encode an ACTG string into the paper's numeric series."""
    try:
        return np.array([ENCODING[b] for b in sequence], dtype=np.float64)
    except KeyError as exc:
        raise ValueError(f"unknown base {exc.args[0]!r}; expected A/C/T/G") from None


@dataclass(frozen=True)
class PlantedGene:
    """Ground truth for one conserved subsequence pair."""

    chromosome: int
    ref_pos: int
    query_pos: int
    length: int
    mutations: int


@dataclass
class GenomeDataset:
    """Encoded reference/query genomes with planted-gene ground truth."""

    reference: np.ndarray  # (n, d) encoded chromosomes
    query: np.ndarray
    m: int
    genes: list[PlantedGene] = field(default_factory=list)

    @property
    def d(self) -> int:
        return self.reference.shape[1]


def _random_codes(n: int, rng: np.random.Generator) -> np.ndarray:
    return _CODES[rng.integers(0, 4, size=n)]


def make_genome_dataset(
    n: int = 4096,
    d: int = 16,
    m: int = 128,
    genes_per_chromosome: int = 2,
    mutation_rate: float = 0.01,
    seed: int = 0,
) -> GenomeDataset:
    """Generate ``d`` chromosome pairs with conserved genes.

    Each chromosome gets ``genes_per_chromosome`` genes of length ``m``
    planted at random non-overlapping loci in both genomes; the query copy
    carries point mutations at ``mutation_rate`` (substituted bases),
    modelling the variants between the GIAB trio member and GRCh37.
    """
    if n < 4 * m:
        raise ValueError(f"n={n} too small for gene length m={m}")
    rng = np.random.default_rng(seed)
    reference = np.empty((n, d))
    query = np.empty((n, d))
    genes: list[PlantedGene] = []

    for k in range(d):
        reference[:, k] = _random_codes(n, rng)
        query[:, k] = _random_codes(n, rng)
        used_r: list[int] = []
        used_q: list[int] = []
        for _ in range(genes_per_chromosome):
            gene = _random_codes(m, rng)
            r_pos = _draw_locus(rng, n, m, used_r)
            q_pos = _draw_locus(rng, n, m, used_q)
            used_r.append(r_pos)
            used_q.append(q_pos)
            reference[r_pos : r_pos + m, k] = gene
            mutated = gene.copy()
            mut_sites = rng.random(m) < mutation_rate
            mutated[mut_sites] = _random_codes(int(mut_sites.sum()), rng)
            query[q_pos : q_pos + m, k] = mutated
            genes.append(
                PlantedGene(
                    chromosome=k,
                    ref_pos=r_pos,
                    query_pos=q_pos,
                    length=m,
                    mutations=int(mut_sites.sum()),
                )
            )
    return GenomeDataset(reference=reference, query=query, m=m, genes=genes)


def _draw_locus(
    rng: np.random.Generator, n: int, m: int, used: list[int], max_tries: int = 1000
) -> int:
    for _ in range(max_tries):
        pos = int(rng.integers(0, n - m))
        if all(abs(pos - u) >= 2 * m for u in used):
            return pos
    raise ValueError("could not place non-overlapping gene locus")
