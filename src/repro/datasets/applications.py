"""Synthetic workloads for the application domains the paper's
introduction motivates.

Section I/II cite matrix profile successes in earthquake foreshock
analysis (Shakibay Senobari et al.), power-system event discovery in
synchrophasor data (Shi et al.) and music information retrieval.  These
generators produce structurally faithful synthetic stand-ins for the two
scientific ones, so the examples can demonstrate the end-to-end workflows
on realistic-shaped data:

* **seismic traces** — background microseism noise with repeating
  earthquake waveforms (a P-wave onset followed by a decaying S-coda);
  repeated events share a source waveform, which is precisely what
  similarity-join template matching discovers;
* **synchrophasor (PMU) data** — multi-channel 50/60 Hz phasor
  magnitude/frequency measurements with injected grid events (voltage
  sags, frequency excursions, oscillations) that reappear across the
  record.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SeismicDataset",
    "make_seismic_dataset",
    "GRID_EVENT_TYPES",
    "PMUDataset",
    "make_pmu_dataset",
]


# --------------------------------------------------------------------------
# Seismic


@dataclass(frozen=True)
class SeismicEvent:
    """One earthquake occurrence in the trace."""

    position: int
    family: int  # events of the same family share a source waveform
    magnitude: float


@dataclass
class SeismicDataset:
    """Single-station, possibly multi-component seismic trace."""

    trace: np.ndarray  # (n, d) components
    events: list[SeismicEvent] = field(default_factory=list)
    sampling_rate: float = 100.0  # Hz, typical short-period station

    @property
    def n(self) -> int:
        return self.trace.shape[0]


def _quake_waveform(length: int, rng: np.random.Generator) -> np.ndarray:
    """A P-onset + S-coda source waveform of the given length."""
    t = np.arange(length, dtype=np.float64)
    p_onset = int(0.1 * length)
    s_onset = int(0.35 * length)
    wave = np.zeros(length)
    # P phase: higher frequency, modest amplitude, fast decay.
    tp = np.clip(t - p_onset, 0, None)
    wave += 0.4 * np.exp(-tp / (0.08 * length)) * np.sin(
        2 * np.pi * tp * rng.uniform(0.12, 0.2)
    ) * (t >= p_onset)
    # S phase + coda: lower frequency, larger amplitude, slow decay.
    ts = np.clip(t - s_onset, 0, None)
    wave += np.exp(-ts / (0.3 * length)) * np.sin(
        2 * np.pi * ts * rng.uniform(0.05, 0.09)
    ) * (t >= s_onset)
    return wave


def make_seismic_dataset(
    n: int = 20_000,
    d: int = 3,
    event_length: int = 400,
    n_families: int = 2,
    events_per_family: int = 3,
    snr: float = 5.0,
    seed: int = 0,
) -> SeismicDataset:
    """A ``d``-component trace with repeating earthquake families.

    Events of one family share a source waveform (scaled per occurrence —
    magnitude varies but the shape repeats, the foreshock-study premise);
    each component sees the waveform with a component-specific weight.
    Background is 1/f-ish microseism noise.
    """
    if n < (n_families * events_per_family + 1) * 2 * event_length:
        raise ValueError("trace too short for the requested events")
    rng = np.random.default_rng(seed)

    # Coloured background noise: cumulative-averaged white noise.
    white = rng.normal(size=(n + 64, d))
    kernel = np.ones(64) / 64.0
    background = np.stack(
        [np.convolve(white[:, k], kernel, mode="valid")[:n] for k in range(d)],
        axis=1,
    )
    background += 0.3 * rng.normal(size=(n, d))

    trace = background.copy()
    events: list[SeismicEvent] = []
    total = n_families * events_per_family
    # Spread positions with jittered spacing.
    slots = np.sort(rng.choice(
        np.arange(event_length, n - 2 * event_length, 2 * event_length),
        size=total,
        replace=False,
    ))
    rng.shuffle(slots)
    component_weights = rng.uniform(0.5, 1.0, size=(n_families, d))
    waveforms = [_quake_waveform(event_length, rng) for _ in range(n_families)]
    for idx, pos in enumerate(slots):
        family = idx % n_families
        magnitude = rng.uniform(0.7, 1.3) * snr * background.std()
        for k in range(d):
            trace[pos : pos + event_length, k] += (
                magnitude * component_weights[family, k] * waveforms[family]
            )
        events.append(SeismicEvent(position=int(pos), family=family,
                                   magnitude=float(magnitude)))
    return SeismicDataset(trace=trace, events=events)


# --------------------------------------------------------------------------
# Synchrophasor (PMU)


GRID_EVENT_TYPES = ("voltage_sag", "frequency_excursion", "oscillation")


@dataclass(frozen=True)
class GridEvent:
    position: int
    kind: str
    duration: int


@dataclass
class PMUDataset:
    """Multi-channel synchrophasor record with labelled grid events."""

    measurements: np.ndarray  # (n, d): alternating |V| and f channels
    events: list[GridEvent] = field(default_factory=list)
    reporting_rate: float = 30.0  # frames/s (IEEE C37.118 typical)

    @property
    def n(self) -> int:
        return self.measurements.shape[0]


def _apply_grid_event(
    data: np.ndarray, pos: int, kind: str, duration: int, rng: np.random.Generator
) -> None:
    """Superimpose one event on all channels (magnitude channels are the
    even columns, frequency channels the odd ones)."""
    t = np.linspace(0, 1, duration)
    if kind == "voltage_sag":
        shape = -0.08 * (np.exp(-((t - 0.3) ** 2) / 0.02) + 0.5 * (t > 0.3) * (t < 0.7))
        for col in range(0, data.shape[1], 2):
            data[pos : pos + duration, col] += shape * rng.uniform(0.8, 1.2)
    elif kind == "frequency_excursion":
        shape = -0.05 * np.sin(np.pi * t) ** 2
        for col in range(1, data.shape[1], 2):
            data[pos : pos + duration, col] += shape * rng.uniform(0.8, 1.2)
    elif kind == "oscillation":
        shape = 0.03 * np.exp(-2 * t) * np.sin(2 * np.pi * 8 * t)
        for col in range(data.shape[1]):
            data[pos : pos + duration, col] += shape * rng.uniform(0.8, 1.2)
    else:  # pragma: no cover - guarded by caller
        raise ValueError(f"unknown grid event {kind!r}")


def make_pmu_dataset(
    n: int = 10_000,
    n_pmus: int = 4,
    event_duration: int = 150,
    events_per_type: int = 2,
    seed: int = 0,
) -> PMUDataset:
    """A synchrophasor record from ``n_pmus`` PMUs (|V| + f per PMU).

    Baseline: per-unit voltage magnitude ~1.0 with slow load drift, and
    frequency ~60 Hz (stored as deviation) with ambient noise.  Each event
    type is injected ``events_per_type`` times — recurring events are what
    the matrix profile labels in the synchrophasor study.
    """
    total = len(GRID_EVENT_TYPES) * events_per_type
    if n < (total + 1) * 2 * event_duration:
        raise ValueError("record too short for the requested events")
    rng = np.random.default_rng(seed)
    d = 2 * n_pmus
    t = np.arange(n)

    data = np.empty((n, d))
    for pmu in range(n_pmus):
        drift = 0.01 * np.sin(2 * np.pi * t / rng.uniform(3000, 6000))
        data[:, 2 * pmu] = 1.0 + drift + 0.002 * rng.normal(size=n)
        data[:, 2 * pmu + 1] = 0.0 + 0.005 * np.sin(
            2 * np.pi * t / rng.uniform(800, 1500)
        ) + 0.001 * rng.normal(size=n)

    events: list[GridEvent] = []
    positions = np.sort(rng.choice(
        np.arange(event_duration, n - 2 * event_duration, 2 * event_duration),
        size=total,
        replace=False,
    ))
    rng.shuffle(positions)
    for idx, pos in enumerate(positions):
        kind = GRID_EVENT_TYPES[idx % len(GRID_EVENT_TYPES)]
        _apply_grid_event(data, int(pos), kind, event_duration, rng)
        events.append(GridEvent(position=int(pos), kind=kind,
                                duration=event_duration))
    return PMUDataset(measurements=data, events=events)
