"""Synthetic HPC-ODA-style monitoring traces (case study VI-A substitute).

The paper's first case study uses the Application Classification segment of
the HPC-ODA dataset (Netti, 2020): performance metrics from 16 compute
nodes sampled at 1 Hz for one day while labelled benchmarks run.  That
dataset is a Zenodo download we cannot fetch offline, so this module
generates a statistically similar substitute: a timeline of labelled
application phases where each (application, sensor) pair has a
characteristic signature — base level, periodicity, burstiness — drawn
deterministically from the pair's identity.  The classifier pipeline
(matrix profile between reference/query halves + nearest-neighbour label
transfer) runs unchanged on top.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "APPLICATION_CLASSES",
    "SENSOR_NAMES",
    "HPCODataset",
    "make_hpcoda_dataset",
]

#: The application classes of the paper's Fig. 8 legend.
APPLICATION_CLASSES = (
    "None",
    "Kripke",
    "LAMMPS",
    "linpack",
    "AMG",
    "PENNANT",
    "Quicksilver",
)

#: 16 monitored performance metrics (the paper names branch instructions,
#: branch misses, cache misses and context switches among them).
SENSOR_NAMES = (
    "branch_instructions",
    "branch_misses",
    "cache_misses",
    "cache_references",
    "context_switches",
    "cpu_cycles",
    "instructions",
    "page_faults",
    "llc_load_misses",
    "llc_store_misses",
    "dram_reads",
    "dram_writes",
    "ipc_proxy",
    "network_bytes",
    "filesystem_ops",
    "power_draw",
)


@dataclass
class HPCODataset:
    """Labelled multi-sensor monitoring trace split into halves.

    ``reference``/``query`` are (n, d) sensor matrices; ``*_labels`` give
    the application class index of every *sample*.
    """

    reference: np.ndarray
    query: np.ndarray
    reference_labels: np.ndarray
    query_labels: np.ndarray
    classes: tuple[str, ...] = APPLICATION_CLASSES
    sensors: tuple[str, ...] = SENSOR_NAMES

    @property
    def d(self) -> int:
        return self.reference.shape[1]

    def segment_labels(self, labels: np.ndarray, m: int) -> np.ndarray:
        """Per-segment majority label (label of the segment midpoint)."""
        n_seg = labels.shape[0] - m + 1
        return labels[m // 2 : m // 2 + n_seg]


def _signature(app_idx: int, sensor_idx: int):
    """Deterministic per-(app, sensor) signature parameters.

    Matrix profile distances are z-normalised, so only the *shape* of a
    sensor trace discriminates: per-class signatures therefore differ in
    periodicity, waveform mix and burstiness (not just level).  The "None"
    class (idle) is near-pure noise.
    """
    rng = np.random.default_rng(100_003 * app_idx + 917 * sensor_idx + 13)
    idle = app_idx == 0
    return {
        "level": rng.uniform(0.5, 4.0) if not idle else rng.uniform(0.0, 0.3),
        "period": int(rng.integers(8, 40)),
        "period_amp": rng.uniform(0.8, 2.0) if not idle else 0.02,
        "harmonic": rng.uniform(0.2, 0.9) if not idle else 0.0,
        "burst_rate": rng.uniform(0.0, 0.08) if not idle else 0.0,
        "burst_amp": rng.uniform(0.5, 1.5),
        "noise": rng.uniform(0.02, 0.10),
    }


def _render_phase(
    app_idx: int, length: int, d: int, rng: np.random.Generator
) -> np.ndarray:
    """Sensor data for one application phase of ``length`` samples."""
    out = np.empty((length, d))
    t = np.arange(length)
    for s in range(d):
        sig = _signature(app_idx, s)
        phase_shift = rng.uniform(0, 2 * np.pi)
        base = 2 * np.pi * t / sig["period"] + phase_shift
        wave = sig["level"] + sig["period_amp"] * (
            np.sin(base) + sig["harmonic"] * np.sin(3 * base)
        )
        bursts = (rng.random(length) < sig["burst_rate"]) * sig["burst_amp"]
        out[:, s] = wave + bursts + rng.normal(0, sig["noise"], size=length)
    return out


def make_hpcoda_dataset(
    n_per_half: int = 2048,
    d: int = 16,
    phase_length: tuple[int, int] = (128, 384),
    seed: int = 0,
) -> HPCODataset:
    """Generate a labelled two-half monitoring trace.

    Both halves contain the same application mix in different random
    orders/durations, mimicking "continuous operational data for half a
    day" per half.  ``d`` sensors (16 to match the case study).
    """
    if d > len(SENSOR_NAMES):
        raise ValueError(f"at most {len(SENSOR_NAMES)} sensors available")
    rng = np.random.default_rng(seed)

    def build_half(half_seed: int):
        # The real dataset runs the benchmark suite repeatedly over the
        # day, so every class occurs in both halves; we mimic that by
        # cycling through a reshuffled class list (round-robin with random
        # order and durations) rather than sampling classes independently.
        half_rng = np.random.default_rng(half_seed)
        chunks, labels = [], []
        total = 0
        deck: list[int] = []
        while total < n_per_half:
            if not deck:
                deck = list(half_rng.permutation(len(APPLICATION_CLASSES)))
            app = int(deck.pop())
            length = int(half_rng.integers(*phase_length))
            length = min(length, n_per_half - total)
            chunks.append(_render_phase(app, length, d, half_rng))
            labels.append(np.full(length, app, dtype=np.int64))
            total += length
        return np.concatenate(chunks, axis=0), np.concatenate(labels)

    ref, ref_labels = build_half(int(rng.integers(1 << 31)))
    qry, qry_labels = build_half(int(rng.integers(1 << 31)))
    return HPCODataset(
        reference=ref,
        query=qry,
        reference_labels=ref_labels,
        query_labels=qry_labels,
        sensors=SENSOR_NAMES[:d],
    )
