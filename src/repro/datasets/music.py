"""Synthetic music (chroma-feature) dataset — the paper's third motivating
domain (music information retrieval, the SiMPle line of work).

SiMPle-style MIR runs similarity joins over **chroma features**: 12-d
vectors per audio frame giving the energy of each pitch class.  A song's
structure (verse/chorus/bridge) makes the chorus a repeating
multi-dimensional pattern — exactly a matrix profile motif.  This
generator builds a song as a section sequence; every section type has a
chord progression rendered into chroma space, and repeated sections share
it (with per-occurrence performance noise), so the matrix profile can
recover the song structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PITCH_CLASSES", "Section", "ChromaSong", "make_chroma_song"]

PITCH_CLASSES = ("C", "C#", "D", "D#", "E", "F", "F#", "G", "G#", "A", "A#", "B")

#: Simple triads as pitch-class index triples.
_CHORDS = {
    "C": (0, 4, 7),
    "Dm": (2, 5, 9),
    "Em": (4, 7, 11),
    "F": (5, 9, 0),
    "G": (7, 11, 2),
    "Am": (9, 0, 4),
}

#: Section type -> chord progression (one chord per bar).
_PROGRESSIONS = {
    "verse": ("C", "Am", "F", "G"),
    "chorus": ("F", "G", "C", "Am"),
    "bridge": ("Dm", "G", "Em", "Am"),
}


@dataclass(frozen=True)
class Section:
    """One rendered song section."""

    kind: str  # "verse" | "chorus" | "bridge"
    start: int  # frame index
    length: int


@dataclass
class ChromaSong:
    """A synthetic song in chroma space."""

    chroma: np.ndarray  # (n_frames, 12)
    sections: list[Section] = field(default_factory=list)
    frames_per_bar: int = 16

    @property
    def n_frames(self) -> int:
        return self.chroma.shape[0]

    def occurrences(self, kind: str) -> list[Section]:
        return [s for s in self.sections if s.kind == kind]


def _render_section(
    kind: str, bars: int, frames_per_bar: int, rng: np.random.Generator
) -> np.ndarray:
    """Chroma frames for one section: chord energy + melodic movement."""
    progression = _PROGRESSIONS[kind]
    frames = bars * frames_per_bar
    out = np.zeros((frames, 12))
    for bar in range(bars):
        chord = _CHORDS[progression[bar % len(progression)]]
        sl = slice(bar * frames_per_bar, (bar + 1) * frames_per_bar)
        for pc in chord:
            out[sl, pc] += 1.0
        # A moving melody note on top of the chord.
        chord_arr = np.asarray(chord)
        melody = chord_arr[(bar + np.arange(frames_per_bar)) % len(chord_arr)]
        out[np.arange(bar * frames_per_bar, (bar + 1) * frames_per_bar), melody] += 0.5
    return out


def make_chroma_song(
    structure: tuple[str, ...] = (
        "verse", "chorus", "verse", "chorus", "bridge", "chorus",
    ),
    bars_per_section: int = 4,
    frames_per_bar: int = 16,
    noise: float = 0.15,
    seed: int = 0,
) -> ChromaSong:
    """Render ``structure`` into a chroma sequence with ground truth.

    Repeated section kinds share their progression (so choruses match
    each other); per-occurrence noise models performance variation.
    """
    for kind in structure:
        if kind not in _PROGRESSIONS:
            raise ValueError(
                f"unknown section kind {kind!r}; expected one of "
                f"{sorted(_PROGRESSIONS)}"
            )
    rng = np.random.default_rng(seed)
    chunks = []
    sections: list[Section] = []
    cursor = 0
    for kind in structure:
        rendered = _render_section(kind, bars_per_section, frames_per_bar, rng)
        rendered = rendered + noise * rng.random(rendered.shape)
        chunks.append(rendered)
        sections.append(Section(kind=kind, start=cursor, length=rendered.shape[0]))
        cursor += rendered.shape[0]
    return ChromaSong(
        chroma=np.concatenate(chunks, axis=0),
        sections=sections,
        frames_per_bar=frames_per_bar,
    )
