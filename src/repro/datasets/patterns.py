"""The eight primitive injected patterns P0–P7 of the paper's stress tests.

Fig. 3 plots eight shapes of differing complexity over ``x in [0, m)`` with
values normalised to ``y in [-1, 1]``; the exact parametrisations are not
published, so we use eight standard primitives of clearly graded
complexity (pure tone up to a frequency-swept chirp).  The paper's finding
— all shapes detected at ~100% except slightly lower recall for two of
them in the FP16-family modes — depends only on having a diverse set.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["PATTERN_NAMES", "generate_pattern", "all_patterns"]

PATTERN_NAMES = ("P0", "P1", "P2", "P3", "P4", "P5", "P6", "P7")


def _phase(m: int) -> np.ndarray:
    return np.linspace(0.0, 1.0, m, endpoint=False)


def _p0_sine(m: int) -> np.ndarray:
    """One sine cycle — the simplest periodic pattern."""
    return np.sin(2 * np.pi * _phase(m))


def _p1_two_tone(m: int) -> np.ndarray:
    """Superposition of two harmonics."""
    t = _phase(m)
    return 0.7 * np.sin(2 * np.pi * t) + 0.3 * np.sin(6 * np.pi * t)


def _p2_square(m: int) -> np.ndarray:
    """Square wave — sharp edges, spectrally hard."""
    return np.sign(np.sin(2 * np.pi * 2 * _phase(m)) + 1e-12)


def _p3_sawtooth(m: int) -> np.ndarray:
    """Sawtooth — discontinuous ramp repeats."""
    t = _phase(m)
    return 2.0 * (2 * t - np.floor(2 * t)) - 1.0


def _p4_triangle(m: int) -> np.ndarray:
    """Triangle wave."""
    t = _phase(m)
    return 2.0 * np.abs(2.0 * (2 * t - np.floor(2 * t + 0.5))) - 1.0


def _p5_gaussian(m: int) -> np.ndarray:
    """Gaussian bump — a transient, aperiodic event."""
    t = _phase(m)
    bump = np.exp(-0.5 * ((t - 0.5) / 0.12) ** 2)
    return 2.0 * bump - 1.0


def _p6_chirp(m: int) -> np.ndarray:
    """Linear chirp — frequency sweep, the most complex shape."""
    t = _phase(m)
    return np.sin(2 * np.pi * (1.0 * t + 3.0 * t * t))


def _p7_damped(m: int) -> np.ndarray:
    """Exponentially damped oscillation — a ring-down event."""
    t = _phase(m)
    return np.exp(-3.0 * t) * np.sin(2 * np.pi * 4 * t)


_GENERATORS: dict[str, Callable[[int], np.ndarray]] = {
    "P0": _p0_sine,
    "P1": _p1_two_tone,
    "P2": _p2_square,
    "P3": _p3_sawtooth,
    "P4": _p4_triangle,
    "P5": _p5_gaussian,
    "P6": _p6_chirp,
    "P7": _p7_damped,
}


def generate_pattern(name: str, m: int) -> np.ndarray:
    """Length-``m`` instance of pattern ``name``, normalised to [-1, 1]."""
    if name not in _GENERATORS:
        raise ValueError(f"unknown pattern {name!r}; expected one of {PATTERN_NAMES}")
    if m < 4:
        raise ValueError(f"pattern length must be >= 4, got {m}")
    wave = _GENERATORS[name](m)
    peak = np.max(np.abs(wave))
    return wave / peak if peak > 0 else wave


def all_patterns(m: int) -> dict[str, np.ndarray]:
    """All eight patterns at length ``m``."""
    return {name: generate_pattern(name, m) for name in PATTERN_NAMES}
