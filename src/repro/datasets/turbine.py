"""Synthetic heavy-duty gas-turbine telemetry (case study VI-C substitute).

The paper's final case study uses proprietary turbine-speed series from
two machines (GT1, GT2) operated by a municipal power provider, focusing
on the detection of **startup events**.  Fig. 11 shows the two startup
patterns, each a distinct operation-initiation mode rising from 0 to 100%
speed over ~2000 s; the data is min-max normalised "to avoid overflow in
reduced precision computation".

This module synthesises that structure: single-dimensional (d=1) speed
series containing idle noise, one or two startup events drawn from two
parametrised profiles, and high-speed operation after startup.  Series are
tagged with the machine (GT1/GT2 differ slightly in ramp parameters) and
the startup locations, enabling the Table I pair-category harness and the
relaxed-recall metric of Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "startup_pattern",
    "TurbineSeries",
    "make_turbine_series",
    "PairCategory",
    "PAIR_CATEGORIES",
    "make_turbine_pairs",
]


def startup_pattern(kind: str, m: int, machine_bias: float = 0.0) -> np.ndarray:
    """Normalised startup profile over ``m`` samples, values in [0, 1].

    * ``"P1"`` — two-stage ramp: fast rise to an intermediate plateau
      (~60% speed, purge/ignition hold), then ramp to full speed.
    * ``"P2"`` — smooth s-curve ramp directly to full speed.

    ``machine_bias`` perturbs plateau/steepness slightly (GT1 vs GT2).
    """
    t = np.linspace(0.0, 1.0, m)
    if kind == "P1":
        plateau = 0.58 + 0.04 * machine_bias
        stage1 = np.clip(t / 0.25, 0.0, 1.0) * plateau
        stage2 = np.clip((t - 0.55) / 0.3, 0.0, 1.0) * (1.0 - plateau)
        return stage1 + stage2
    if kind == "P2":
        steep = 10.0 + 2.0 * machine_bias
        wave = 1.0 / (1.0 + np.exp(-steep * (t - 0.5)))
        wave = (wave - wave[0]) / (wave[-1] - wave[0])
        return wave
    raise ValueError(f"unknown startup pattern {kind!r}; expected 'P1' or 'P2'")


@dataclass
class TurbineSeries:
    """One synthetic turbine-speed series with startup ground truth."""

    values: np.ndarray  # (n,) min-max normalised speed
    machine: str  # "GT1" or "GT2"
    startups: list[tuple[str, int]] = field(default_factory=list)  # (kind, pos)

    @property
    def n(self) -> int:
        return self.values.shape[0]

    def positions_of(self, kind: str) -> list[int]:
        return [pos for k, pos in self.startups if k == kind]


def make_turbine_series(
    n: int,
    m: int,
    patterns: tuple[str, ...],
    machine: str = "GT1",
    noise: float = 0.004,
    seed: int = 0,
) -> TurbineSeries:
    """A speed series containing the given startup patterns in order.

    The series alternates idle (speed ~0) and running (speed ~1) intervals
    joined by the requested startup ramps (and simple linear shutdowns),
    then is min-max normalised — the paper's overflow mitigation.
    """
    if n < (len(patterns) + 1) * 2 * m:
        raise ValueError(f"n={n} too short for {len(patterns)} startups of m={m}")
    rng = np.random.default_rng(seed)
    bias = {"GT1": 0.0, "GT2": 1.0}.get(machine)
    if bias is None:
        raise ValueError(f"unknown machine {machine!r}; expected 'GT1' or 'GT2'")

    values = np.zeros(n)
    startups: list[tuple[str, int]] = []
    # Budget the idle gaps so all events fit with jittered spacing.
    n_events = len(patterns)
    slack = n - n_events * 2 * m  # samples not covered by ramp+run blocks
    gaps = rng.dirichlet(np.ones(n_events + 1)) * slack * 0.8
    cursor = 0
    for kind, gap in zip(patterns, gaps[:-1]):
        cursor += int(gap) + m // 4
        cursor = min(cursor, n - 2 * m)
        ramp = startup_pattern(kind, m, machine_bias=bias)
        values[cursor : cursor + m] = ramp
        startups.append((kind, cursor))
        run_end = min(cursor + 2 * m, n)
        values[cursor + m : run_end] = 1.0
        # linear shutdown over m/4 samples (if room remains)
        sd = min(m // 4, n - run_end)
        if sd > 0:
            values[run_end : run_end + sd] = np.linspace(1.0, 0.0, sd)
        cursor = run_end + sd

    values += rng.normal(0.0, noise, size=n)
    vmin, vmax = values.min(), values.max()
    values = (values - vmin) / (vmax - vmin)
    return TurbineSeries(values=values, machine=machine, startups=startups)


@dataclass(frozen=True)
class PairCategory:
    """One Table-I category: which patterns reference/query series contain."""

    name: str  # e.g. "P1-P1", "both-P2"
    reference_patterns: tuple[str, ...]
    query_patterns: tuple[str, ...]
    target: str  # the startup kind whose detection is scored


#: The four categories of Table I: P1-P1, P2-P2, both-P1, both-P2.
PAIR_CATEGORIES = (
    PairCategory("P1-P1", ("P1",), ("P1",), target="P1"),
    PairCategory("P2-P2", ("P2",), ("P2",), target="P2"),
    PairCategory("both-P1", ("P1", "P2"), ("P1",), target="P1"),
    PairCategory("both-P2", ("P1", "P2"), ("P2",), target="P2"),
)


def make_turbine_pairs(
    category: PairCategory,
    n_pairs: int,
    n: int,
    m: int,
    machines: tuple[str, str] = ("GT1", "GT1"),
    seed: int = 0,
) -> list[tuple[TurbineSeries, TurbineSeries]]:
    """Generate ``n_pairs`` (reference, query) series pairs of one category.

    ``machines`` selects the instances the two sides come from — the paper
    evaluates GT1-GT1, GT2-GT2 and GT1-GT2 combinations (Table I rows).
    """
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(n_pairs):
        ref = make_turbine_series(
            n, m, category.reference_patterns, machines[0], seed=int(rng.integers(1 << 31))
        )
        qry = make_turbine_series(
            n, m, category.query_patterns, machines[1], seed=int(rng.integers(1 << 31))
        )
        pairs.append((ref, qry))
    return pairs
