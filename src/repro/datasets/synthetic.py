"""Synthetic stress-test dataset: noise with injected repeating patterns.

Mirrors the paper's evaluation data (Section V-A): "random noise combined
with randomly-located injected repeating patterns, providing a reliable
basis for pattern detection".  Each embedded motif is one pattern instance
written into *both* the reference and the query series at known positions,
so the matrix profile index of the query occurrence should point at the
reference occurrence — the ground truth for ``R_embedded``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .patterns import PATTERN_NAMES, generate_pattern

__all__ = ["EmbeddedMotif", "StressDataset", "make_stress_dataset", "noise_series"]


@dataclass(frozen=True)
class EmbeddedMotif:
    """Ground truth for one embedded motif occurrence pair."""

    pattern: str
    dim: int  # dimension the pattern lives in
    ref_pos: int  # start sample in the reference series
    query_pos: int  # start sample in the query series
    length: int
    amplitude: float


@dataclass
class StressDataset:
    """A reference/query pair with embedded-motif ground truth."""

    reference: np.ndarray  # (n, d)
    query: np.ndarray  # (n, d)
    m: int
    motifs: list[EmbeddedMotif] = field(default_factory=list)

    @property
    def n(self) -> int:
        return self.reference.shape[0]

    @property
    def d(self) -> int:
        return self.reference.shape[1]


def noise_series(n: int, d: int, rng: np.random.Generator, std: float = 1.0) -> np.ndarray:
    """Plain Gaussian noise, (n, d).  Bounded values keep FP16 in range —
    the same property the paper engineers via min-max normalisation."""
    return rng.normal(0.0, std, size=(n, d))


def _place_nonoverlapping(
    rng: np.random.Generator, n: int, length: int, count: int, min_gap: int
) -> list[int]:
    """Draw ``count`` start positions whose windows (plus ``min_gap``)
    don't overlap.

    Constructive placement: the required blocks are laid out in order and
    the remaining slack is split into random gaps (Dirichlet), then the
    block order is shuffled — succeeds for any density that fits at all,
    unlike rejection sampling.
    """
    block = length + min_gap
    slack = n - count * block
    if slack < 0:
        raise ValueError(
            f"could not place {count} non-overlapping windows of {length} "
            f"(+{min_gap} gap) in {n}"
        )
    gaps = rng.dirichlet(np.ones(count + 1)) * slack
    starts = []
    cursor = 0.0
    for t in range(count):
        cursor += gaps[t]
        starts.append(int(cursor))
        cursor += block
    rng.shuffle(starts)
    return starts


def make_stress_dataset(
    n: int,
    d: int,
    m: int,
    patterns: tuple[str, ...] = PATTERN_NAMES,
    motifs_per_pattern: int = 1,
    amplitude: float = 4.0,
    noise_std: float = 1.0,
    instance_jitter: float = 0.8,
    seed: int = 0,
) -> StressDataset:
    """Build a stress-test reference/query pair.

    Each requested pattern is embedded ``motifs_per_pattern`` times: the
    *identical* pattern instance (scaled by ``amplitude``, which dominates
    the unit noise) is added into a random dimension at random positions of
    both series.

    ``instance_jitter`` adds a fixed per-instance smooth perturbation to
    the waveform (shared by the reference and query copies of that
    instance).  Without it, multiple embeddings of the same *periodic*
    pattern are interchangeable under z-normalisation, so the matrix
    profile may legitimately pair a query occurrence with a different
    reference occurrence and the slot-wise ground truth becomes ambiguous.
    """
    if n < 4 * m:
        raise ValueError(f"n={n} too small for m={m}; need n >= 4m")
    rng = np.random.default_rng(seed)
    reference = noise_series(n, d, rng, noise_std)
    query = noise_series(n, d, rng, noise_std)

    total = len(patterns) * motifs_per_pattern
    ref_positions = _place_nonoverlapping(rng, n, m, total, min_gap=m // 2)
    query_positions = _place_nonoverlapping(rng, n, m, total, min_gap=m // 2)

    motifs: list[EmbeddedMotif] = []
    slot = 0
    for name in patterns:
        wave = generate_pattern(name, m)
        for repeat in range(motifs_per_pattern):
            # Repeats of the *same* pattern go to distinct dimensions
            # (round-robin): two copies of a periodic pattern in one
            # dimension are interchangeable under z-normalisation even
            # with waveform jitter, which would make the slot-wise ground
            # truth ambiguous.
            dim = repeat % d if motifs_per_pattern > 1 else int(rng.integers(0, d))
            r_pos = ref_positions[slot]
            q_pos = query_positions[slot]
            # Smooth per-instance fingerprint: low-pass noise added to the
            # waveform itself, identical in both copies.
            rough = rng.normal(0.0, 1.0, size=m)
            kernel = np.ones(max(m // 8, 1)) / max(m // 8, 1)
            fingerprint = np.convolve(rough, kernel, mode="same")
            peak = np.max(np.abs(fingerprint)) or 1.0
            instance = wave + instance_jitter * fingerprint / peak
            reference[r_pos : r_pos + m, dim] += amplitude * instance
            query[q_pos : q_pos + m, dim] += amplitude * instance
            motifs.append(
                EmbeddedMotif(
                    pattern=name,
                    dim=dim,
                    ref_pos=r_pos,
                    query_pos=q_pos,
                    length=m,
                    amplitude=amplitude,
                )
            )
            slot += 1
    return StressDataset(reference=reference, query=query, m=m, motifs=motifs)
