"""Elasticity around the fleet: quotas, backpressure, autoscaling.

A cluster serving many tenants needs three guards the single-pool
service never did:

* :class:`TenantQuota` — per-tenant admission ceilings (pending jobs and
  profile cells in flight), so one tenant cannot starve the fleet;
* queue-depth **backpressure** — a hard cap on total pending jobs, shed
  *at submission* with :class:`BackpressureError` (clients retry with
  their own :class:`~repro.core.config.RetryPolicy` backoff) rather than
  letting the queue grow unbounded;
* :class:`ClusterAutoscaler` — grows/shrinks the node pool from the
  admission controller's EMA backlog signal (seconds of queued work),
  with hysteresis and a cooldown so storms do not flap the fleet.

All three are pure decision objects: the service owns the state they
inspect and applies what they decide, so every decision is unit-testable
without a fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "QuotaExceededError",
    "BackpressureError",
    "TenantQuota",
    "ClusterAutoscaler",
]


class QuotaExceededError(RuntimeError):
    """A tenant exceeded its admission quota (per-tenant, not global)."""

    def __init__(self, tenant: str, field_name: str, used, limit):
        self.tenant = tenant
        self.field_name = field_name
        self.used = used
        self.limit = limit
        super().__init__(
            f"tenant {tenant!r} over quota: {field_name} {used} >= "
            f"limit {limit}"
        )


class BackpressureError(RuntimeError):
    """The global queue is full; the job was shed at submission."""

    def __init__(self, queue_depth: int, max_queue_depth: int):
        self.queue_depth = queue_depth
        self.max_queue_depth = max_queue_depth
        super().__init__(
            f"queue depth {queue_depth} at the {max_queue_depth} cap; "
            f"retry with backoff"
        )


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission ceilings (None = unlimited)."""

    max_pending: int | None = None
    max_cells: float | None = None  # profile cells in flight (n_r * n_q * d)

    def __post_init__(self) -> None:
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.max_cells is not None and self.max_cells <= 0:
            raise ValueError(f"max_cells must be > 0, got {self.max_cells}")

    def check(self, tenant: str, pending: int, cells: float) -> None:
        """Raise :class:`QuotaExceededError` if admitting one more job
        with ``cells`` profile cells would break this quota."""
        if self.max_pending is not None and pending >= self.max_pending:
            raise QuotaExceededError(
                tenant, "max_pending", pending, self.max_pending
            )
        if self.max_cells is not None and cells > self.max_cells:
            raise QuotaExceededError(
                tenant, "max_cells", cells, self.max_cells
            )


class ClusterAutoscaler:
    """Backlog-driven node-pool sizing with hysteresis and cooldown.

    ``observe(backlog_seconds)`` returns the target pool size: scale up
    (by ``step``) while the EMA backlog exceeds ``scale_up_backlog``
    seconds, scale down while it sits below ``scale_down_backlog``, hold
    otherwise.  At least ``cooldown`` observations must pass between
    resizes — crash storms spike the backlog for a few jobs, and
    replacing nodes faster than the detector confirms deaths just
    thrashes placement.
    """

    def __init__(
        self,
        min_nodes: int = 1,
        max_nodes: int = 8,
        scale_up_backlog: float = 10.0,
        scale_down_backlog: float = 1.0,
        step: int = 1,
        cooldown: int = 3,
    ):
        if min_nodes < 1:
            raise ValueError(f"min_nodes must be >= 1, got {min_nodes}")
        if max_nodes < min_nodes:
            raise ValueError(
                f"max_nodes must be >= min_nodes ({min_nodes}), got "
                f"{max_nodes}"
            )
        if scale_down_backlog > scale_up_backlog:
            raise ValueError(
                f"scale_down_backlog ({scale_down_backlog}) must not "
                f"exceed scale_up_backlog ({scale_up_backlog})"
            )
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.scale_up_backlog = scale_up_backlog
        self.scale_down_backlog = scale_down_backlog
        self.step = step
        self.cooldown = cooldown
        self._since_resize = cooldown  # first observation may act
        #: (backlog_seconds, old_size, new_size) per resize decision.
        self.events: list[tuple[float, int, int]] = []

    def observe(self, backlog_seconds: float, current: int) -> int:
        """Target pool size for the observed EMA backlog."""
        self._since_resize += 1
        if self._since_resize <= self.cooldown:
            return current
        target = current
        if backlog_seconds > self.scale_up_backlog:
            target = min(current + self.step, self.max_nodes)
        elif backlog_seconds < self.scale_down_backlog:
            target = max(current - self.step, self.min_nodes)
        if target != current:
            self.events.append((backlog_seconds, current, target))
            self._since_resize = 0
        return target
