"""Node-level fault schedules: PR 3's deterministic storms, one tier up.

:class:`NodeFaultPlan` lifts :class:`~repro.engine.faults.FaultPlan`'s
counter-based draws from (tile, attempt) to *nodes*: every decision
hashes ``(seed, kind, node)`` through the shared
:func:`~repro.engine.faults.seeded_uniform` primitive, so the same seed
reproduces the same node storm regardless of placement, dispatch order,
or pool size.  Three node-level hazards, matching what a real fleet
sees:

* **crash** — the node dies mid-shard: it completes a seeded fraction of
  its pending tiles, stops heartbeating, and its unfinished tiles are
  re-sharded to survivors (the recovery path).  Crashed nodes stay dead.
* **straggler** — the node's whole shard runs at a seeded slowdown
  factor (thermal throttling, a noisy neighbour); work completes, late.
* **degraded link** — the node's NIC drops to a fraction of its
  bandwidth, stretching the broadcast/gather collectives that touch it.

:class:`HeartbeatDetector` models the failure detector: a crash is
*observed* only after ``miss_threshold`` silent heartbeat intervals plus
seeded jitter — that detection latency is the price of recovery, and it
is deterministic so chaos runs reproduce to the bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.faults import seeded_uniform

__all__ = ["NodeFaultEvent", "NodeFaultPlan", "HeartbeatDetector"]

#: Crash points are mapped into this fraction range of the node's pending
#: shard — never 0 (a node that dies before its first tile is just a
#: smaller cluster) and never 1 (that would be a clean finish).
_CRASH_FRACTION_RANGE = (0.2, 0.8)


@dataclass(frozen=True)
class NodeFaultEvent:
    """One injected node-level fault, for post-run assertions."""

    kind: str  # "crash" | "straggler" | "degraded_link"
    node: int
    detail: float  # crash fraction / slowdown factor / bandwidth factor


class NodeFaultPlan:
    """Seedable per-node fault schedule.

    Parameters
    ----------
    seed:
        Base of every hashed draw; same seed => same storm.
    crash_rate, straggler_rate, degraded_link_rate:
        Per-node probabilities in [0, 1] for each hazard.
    crash_nodes:
        Node ids that crash *unconditionally* (exact-kill chaos tests —
        "kill 25% of the fleet" needs a precise victim set, not a rate).
    straggler_factor:
        Slowdown multiplier (>= 1) applied to a straggler's shard time.
    degraded_link_factor:
        NIC bandwidth multiplier in (0, 1] for a degraded node.
    """

    def __init__(
        self,
        seed: int = 0,
        crash_rate: float = 0.0,
        straggler_rate: float = 0.0,
        degraded_link_rate: float = 0.0,
        crash_nodes: "tuple[int, ...] | frozenset[int]" = (),
        straggler_factor: float = 4.0,
        degraded_link_factor: float = 0.25,
    ):
        for name, rate in (
            ("crash_rate", crash_rate),
            ("straggler_rate", straggler_rate),
            ("degraded_link_rate", degraded_link_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1, got {straggler_factor}"
            )
        if not 0.0 < degraded_link_factor <= 1.0:
            raise ValueError(
                f"degraded_link_factor must be in (0, 1], got "
                f"{degraded_link_factor}"
            )
        self.seed = seed
        self.crash_rate = crash_rate
        self.straggler_rate = straggler_rate
        self.degraded_link_rate = degraded_link_rate
        self.crash_nodes = frozenset(crash_nodes)
        self.straggler_factor = straggler_factor
        self.degraded_link_factor = degraded_link_factor
        self.events: list[NodeFaultEvent] = []

    # ------------------------------------------------------------------
    # The per-node schedule (pure draws; recording happens on injection)

    def crashes(self, node: int) -> bool:
        """Whether ``node`` crashes at some point during the run."""
        if node in self.crash_nodes:
            return True
        return seeded_uniform(self.seed, "node-crash", node) < self.crash_rate

    def crash_fraction(self, node: int) -> float:
        """Fraction of the node's pending shard completed before death."""
        lo, hi = _CRASH_FRACTION_RANGE
        return lo + (hi - lo) * seeded_uniform(self.seed, "crash-frac", node)

    def straggler(self, node: int) -> float:
        """Slowdown multiplier for ``node``'s shard time (1.0 = healthy)."""
        if seeded_uniform(self.seed, "straggler", node) < self.straggler_rate:
            return self.straggler_factor
        return 1.0

    def link_factor(self, node: int) -> float:
        """NIC bandwidth multiplier for ``node`` (1.0 = healthy)."""
        if (
            seeded_uniform(self.seed, "degraded-link", node)
            < self.degraded_link_rate
        ):
            return self.degraded_link_factor
        return 1.0

    # ------------------------------------------------------------------

    def record(self, kind: str, node: int, detail: float) -> None:
        self.events.append(NodeFaultEvent(kind, node, detail))

    def event_counts(self) -> dict[str, int]:
        """Injected events by kind (empty kinds omitted)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


@dataclass(frozen=True)
class HeartbeatDetector:
    """Seeded phi-style failure detector (interval x misses + jitter).

    A node is declared dead ``miss_threshold`` silent intervals after its
    last heartbeat, plus up to one interval of seeded jitter (the
    heartbeats are not phase-aligned with the crash).  Deterministic
    given the seed, so the detection latency a chaos run pays is
    reproducible.
    """

    interval: float = 0.5
    miss_threshold: int = 3
    seed: int = 0
    _latencies: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")
        if self.miss_threshold < 1:
            raise ValueError(
                f"miss_threshold must be >= 1, got {self.miss_threshold}"
            )

    def detection_latency(self, node: int) -> float:
        """Seconds between ``node``'s crash and the coordinator noticing."""
        jitter = seeded_uniform(self.seed, "heartbeat", node)
        latency = self.interval * (self.miss_threshold + jitter)
        self._latencies[node] = latency
        return latency
