"""repro.cluster — sharded multi-node execution that survives its fleet.

The paper's Section VII multi-node extension as a real tier (not the old
analytic adapter): :class:`ClusterSpec` names the fleet,
:class:`ClusterDispatcher` shards the tile grid across simulated nodes
through the one true :func:`~repro.engine.dispatch.execute_plan` loop,
:class:`NodeFaultPlan`/:class:`HeartbeatDetector` make node storms
deterministic, and :func:`resume_cluster` continues a journaled run
after a coordinator crash — bit-identical throughout.  The elasticity
guards (:class:`TenantQuota`, :class:`BackpressureError`,
:class:`ClusterAutoscaler`) plug the fleet into
:class:`~repro.service.MatrixProfileService`.
"""

from .dispatcher import (
    ClusterDispatcher,
    ClusterRunResult,
    NodeShard,
    resume_cluster,
)
from .elastic import (
    BackpressureError,
    ClusterAutoscaler,
    QuotaExceededError,
    TenantQuota,
)
from .faults import HeartbeatDetector, NodeFaultEvent, NodeFaultPlan
from .spec import PLACEMENTS, ClusterSpec

__all__ = [
    "PLACEMENTS",
    "ClusterSpec",
    "ClusterDispatcher",
    "ClusterRunResult",
    "NodeShard",
    "resume_cluster",
    "NodeFaultPlan",
    "NodeFaultEvent",
    "HeartbeatDetector",
    "TenantQuota",
    "QuotaExceededError",
    "BackpressureError",
    "ClusterAutoscaler",
]
