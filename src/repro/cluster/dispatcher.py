"""Sharded cluster execution: the tile grid across nodes, survivably.

The paper's Section VII extension ("multiple nodes, e.g. using MPI or a
Cloud-based solution") as an executable tier: :class:`ClusterDispatcher`
shards an :class:`~repro.engine.plan.ExecutionPlan`'s tile grid across
simulated nodes, runs each shard through the *existing*
:func:`~repro.engine.dispatch.execute_plan` loop (one
:class:`~repro.gpu.simulator.GPUSimulator` per node), and merges the
per-node partial profiles through one
:class:`~repro.engine.accumulate.ProfileAccumulator`.

Bit-identity is the design invariant.  Tiles are independent, so a
tile's output depends only on its geometry, the series, and the config —
never on which node ran it.  The coordinator merges completed tiles in
ascending tile-id order (the serial loop's order, hence the strict-``<``
tie-break contract), buffering out-of-order arrivals, so the final
profile is bit-identical to a single-node run *regardless of sharding,
node loss, or recovery*.  The merge is **asynchronous**: after every
round the contiguous done-prefix of tile ids is merged (and journaled)
immediately — a coordinator crash mid-recovery leaves a valid prefix
journal that :func:`resume_cluster` continues bit-identically.

Node-loss recovery: a :class:`~repro.cluster.faults.NodeFaultPlan`
decides deterministically which nodes crash and after what fraction of
their shard.  Crashed nodes stay dead; their unfinished tiles re-shard
round-robin over the sorted survivors in the next round, paced by the
config's :class:`~repro.core.config.RetryPolicy` (seeded jittered
backoff) and charged the heartbeat detector's detection latency.  The
modelled time prices every phase: topology-aware broadcast over the
fabric graph (degraded NICs included), per-round GPU makespans
(stragglers included), the reduce-tree gather, and the merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import RetryPolicy, RunConfig
from ..core.result import MatrixProfileResult
from ..engine.accumulate import ProfileAccumulator
from ..engine.backends import AnalyticBackend, NumericBackend
from ..engine.checkpoint import RunJournal
from ..engine.dispatch import TileRetryExhaustedError, execute_plan
from ..engine.plan import JobSpec
from ..gpu.calibration import MERGE_TIME_PER_ELEMENT, TILE_DISPATCH_OVERHEAD
from ..gpu.simulator import GPUSimulator
from ..gpu.stream import Timeline
from ..gpu.topology import (
    cluster_broadcast_time,
    cluster_reduce_time,
    degrade_link,
)
from ..precision.modes import PrecisionMode
from .faults import HeartbeatDetector, NodeFaultPlan
from .spec import ClusterSpec

__all__ = ["NodeShard", "ClusterRunResult", "ClusterDispatcher", "resume_cluster"]


@dataclass
class NodeShard:
    """One node's work in one dispatch round."""

    node: int
    round: int
    n_tiles: int
    gpu_time: float  # straggler-scaled simulated makespan of the shard


@dataclass
class ClusterRunResult:
    """Outcome of one cluster run (modelled times + numeric profile)."""

    cluster: ClusterSpec
    mode: PrecisionMode
    nodes: list[NodeShard] = field(default_factory=list)
    broadcast_time: float = 0.0
    gather_time: float = 0.0
    merge_time: float = 0.0
    #: detection latency + retry backoff paid across recovery rounds.
    recovery_overhead: float = 0.0
    round_makespans: list[float] = field(default_factory=list)
    tiles_total: int = 0
    tiles_completed: int = 0
    tiles_restored: int = 0
    tiles_resharded: int = 0
    node_deaths: tuple[int, ...] = ()
    detection_latency: float = 0.0
    backoff_seconds: float = 0.0
    rounds: int = 0
    #: populated on numeric runs; None for modeled (analytic) clusters.
    profile: object = None
    index: object = None
    costs: dict = field(default_factory=dict)
    timeline: Timeline = field(default_factory=Timeline)
    merge_elements: int = 0
    escalations: dict = field(default_factory=dict)

    @property
    def dropped_tiles(self) -> int:
        return self.tiles_total - self.tiles_completed

    @property
    def gpu_makespan(self) -> float:
        """Recovery rounds are sequential: the compute critical path is
        the sum of per-round makespans (one round => the classic max
        over nodes)."""
        return sum(self.round_makespans)

    @property
    def total_time(self) -> float:
        return (
            self.broadcast_time
            + self.gpu_makespan
            + self.gather_time
            + self.merge_time
            + self.recovery_overhead
        )

    def efficiency_vs(self, single_node: "ClusterRunResult") -> float:
        """Strong-scaling parallel efficiency against a 1-node run."""
        return single_node.total_time / (
            self.cluster.n_nodes * self.total_time
        )

    def to_result(self, spec: JobSpec) -> MatrixProfileResult:
        """The standard result object (numeric runs only)."""
        if self.profile is None:
            raise ValueError("a modeled cluster run has no numeric profile")
        return MatrixProfileResult(
            profile=self.profile,
            index=self.index,
            mode=self.mode,
            m=spec.m,
            n_tiles=self.tiles_total,
            n_gpus=self.cluster.total_gpus,
            timeline=self.timeline,
            merge_time=self.merge_time,
            costs=self.costs,
            escalations=dict(self.escalations),
            resumed_tiles=self.tiles_restored,
        )


class ClusterDispatcher:
    """Shards a job across a simulated node fleet and survives its faults.

    Parameters
    ----------
    cluster:
        The fleet (:class:`ClusterSpec`); its ``placement`` picks the
        sharding rule.
    node_faults:
        Optional :class:`NodeFaultPlan` — the storm schedule.
    heartbeat:
        Failure detector pricing crash detection; defaults to a 0.5 s /
        3-miss detector seeded from the fault plan.
    retry_policy:
        Backoff between recovery rounds; defaults to the job config's
        policy (zero-delay when unset).
    fault_plan, health, max_retries, oom_split:
        Tile-level fault machinery, passed through to every per-node
        :func:`execute_plan` call (PR 3's GPU storms compose with node
        storms).
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        *,
        node_faults: NodeFaultPlan | None = None,
        heartbeat: HeartbeatDetector | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_plan=None,
        health=None,
        max_retries: int = 0,
        oom_split: bool = False,
    ):
        self.cluster = cluster
        self.node_faults = node_faults
        self.heartbeat = heartbeat or HeartbeatDetector(
            seed=getattr(node_faults, "seed", 0)
        )
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        self.health = health
        self.max_retries = max_retries
        self.oom_split = oom_split
        #: autoscale history: (old_size, new_size) per resize() call.
        self.resize_events: list[tuple[int, int]] = []
        #: most recent :class:`ClusterRunResult` (health reporting hook).
        self.last_run: ClusterRunResult | None = None

    # ------------------------------------------------------------------
    # Elasticity

    def resize(self, n_nodes: int) -> None:
        """Grow or shrink the node pool (between jobs; autoscaler hook)."""
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if n_nodes == self.cluster.n_nodes:
            return
        self.resize_events.append((self.cluster.n_nodes, n_nodes))
        self.cluster = ClusterSpec(
            **{**self.cluster.to_dict(), "n_nodes": n_nodes}
        )

    # ------------------------------------------------------------------
    # Sharding rules

    def _initial_shards(self, tiles, total: int) -> dict[int, list]:
        """Round 0: the spec's placement over the full fleet.  ``total``
        is the full grid size (block boundaries stay put on resume)."""
        shards: dict[int, list] = {}
        for tile in tiles:
            node = self.cluster.node_of(tile.tile_id, total)
            shards.setdefault(node, []).append(tile)
        return shards

    @staticmethod
    def _reshard(tiles, survivors) -> dict[int, list]:
        """Recovery rounds: round-robin over the sorted survivors."""
        shards: dict[int, list] = {}
        order = sorted(survivors)
        for i, tile in enumerate(sorted(tiles, key=lambda t: t.tile_id)):
            shards.setdefault(order[i % len(order)], []).append(tile)
        return shards

    # ------------------------------------------------------------------

    def run(
        self,
        spec: JobSpec,
        n_tiles: int | None = None,
        *,
        plan=None,
        journal: RunJournal | None = None,
        anytime: bool = False,
    ) -> ClusterRunResult:
        """Execute ``spec`` over the fleet; see the module docstring.

        ``plan``: an already-built :class:`ExecutionPlan` to shard as-is.
        Resume paths must pass the journal-rebuilt plan — re-planning
        from a tile *count* would rebuild a different grid for
        triangular (``symmetric_tiles``) layouts, whose tile count is
        not the requested ``n_tiles``.
        ``journal``: an open :class:`RunJournal` — completed tiles are
        skipped on entry (resume) and every merged tile is recorded.
        ``anytime=True`` returns a partial result instead of raising
        when the whole fleet dies (graceful degradation; the profile's
        untouched columns stay at the dtype limit, a valid upper bound).
        """
        cluster = self.cluster
        faults = self.node_faults
        numeric = not spec.is_modeled
        policy = spec.policy
        if plan is None:
            n_tiles = (
                n_tiles if n_tiles is not None else 4 * cluster.total_gpus
            )
            plan = spec.plan(n_tiles=n_tiles)
        retry_policy = (
            self.retry_policy
            if self.retry_policy is not None
            else (spec.config.retry_policy or RetryPolicy())
        )

        result = ClusterRunResult(
            cluster=cluster, mode=policy.mode, tiles_total=len(plan.tiles)
        )
        accumulator = ProfileAccumulator(
            spec.d, spec.n_q_seg, policy, materialize=numeric
        )

        # Resume: skip journaled tiles, adopt the snapshot.
        done_keys = frozenset()
        if journal is not None:
            done_keys = frozenset(journal.completed_keys())
            journal.restore(accumulator)
            base_mode = PrecisionMode.parse(spec.config.mode)
            for rec in journal.completed_records():
                if rec["mode"] is not None:
                    mode = PrecisionMode.parse(rec["mode"])
                    if mode != base_mode:
                        result.escalations[rec["tile_id"]] = mode

        pending = [t for t in plan.tiles if RunJournal.key(t) not in done_keys]
        result.tiles_restored = len(plan.tiles) - len(pending)
        result.tiles_completed = result.tiles_restored

        # Fabric with this storm's degraded NICs priced in.
        topology = cluster.topology()
        if faults is not None:
            for node in range(cluster.n_nodes):
                factor = faults.link_factor(node)
                if factor < 1.0:
                    degrade_link(topology, node, factor)
                    faults.record("degraded_link", node, factor)

        # Broadcast both input series to the full fleet.
        input_bytes = (
            float((spec.n_r_seg + spec.m - 1) + (spec.n_q_seg + spec.m - 1))
            * spec.d
            * policy.itemsize
        )
        result.broadcast_time = cluster_broadcast_time(input_bytes, topology)

        backend = (
            NumericBackend(discount_shared_h2d=True)
            if numeric
            else AnalyticBackend()
        )
        if self.fault_plan is not None:
            injector = self.fault_plan.injector
            corruptor = self.fault_plan.corruptor
        else:
            injector = corruptor = None

        finished: dict[int, object] = {}  # tile_id -> TileExecution
        dead: set[int] = set()
        merged_ids = {
            t.tile_id
            for t in plan.tiles
            if RunJournal.key(t) in done_keys
        }
        straggled: set[int] = set()
        round_no = 0

        while pending:
            live = [n for n in range(cluster.n_nodes) if n not in dead]
            if not live:
                if anytime:
                    break
                first = min(pending, key=lambda t: t.tile_id)
                raise TileRetryExhaustedError(
                    first.tile_id,
                    round_no,
                    RuntimeError("every node in the cluster is dead"),
                    node_ids=tuple(sorted(dead)),
                )
            if round_no == 0 and len(live) == cluster.n_nodes:
                shards = self._initial_shards(pending, result.tiles_total)
            else:
                shards = self._reshard(pending, live)

            round_makespan = 0.0
            newly_dead: list[int] = []
            for node in sorted(shards):
                shard = shards[node]
                run_tiles = shard
                if faults is not None and faults.crashes(node):
                    fraction = faults.crash_fraction(node)
                    run_tiles = shard[: int(len(shard) * fraction)]
                    newly_dead.append(node)
                    faults.record("crash", node, fraction)
                if not run_tiles:
                    continue
                assignment = [
                    self.cluster.gpu_of(t.tile_id) for t in run_tiles
                ]
                subplan = spec.plan(tiles=run_tiles, assignment=assignment)
                sim = GPUSimulator(
                    cluster.device_spec, n_gpus=cluster.gpus_per_node
                )
                report = execute_plan(
                    subplan,
                    backend,
                    sim,
                    keep_executions=True,
                    max_retries=self.max_retries,
                    failure_injector=injector,
                    corruptor=corruptor,
                    health=self.health,
                    oom_split=self.oom_split,
                    label=f"node{node}",
                )
                result.escalations.update(report.escalations)
                for execution in report.executions:
                    finished[execution.tile.tile_id] = execution
                slowdown = 1.0
                if faults is not None:
                    slowdown = faults.straggler(node)
                    if slowdown > 1.0 and node not in straggled:
                        straggled.add(node)
                        faults.record("straggler", node, slowdown)
                gpu_time = sim.timeline.makespan * slowdown
                result.timeline.extend(sim.timeline)
                result.nodes.append(
                    NodeShard(
                        node=node,
                        round=round_no,
                        n_tiles=len(run_tiles),
                        gpu_time=gpu_time,
                    )
                )
                round_makespan = max(round_makespan, gpu_time)

            result.round_makespans.append(round_makespan)

            # Async partial merge: advance the contiguous done-prefix in
            # tile-id order (the serial loop's order => bit-identity),
            # journaling each merged tile.
            for tile in plan.tiles:
                tid = tile.tile_id
                if tid in merged_ids:
                    continue
                if tid not in finished:
                    break
                execution = finished.pop(tid)
                accumulator.add(execution)
                result.tiles_completed += 1
                merged_ids.add(tid)
                if journal is not None:
                    journal.record(execution, accumulator)

            # Tiles finished out of prefix order stay buffered in
            # ``finished`` until their predecessors complete; they are
            # done, so they must not be re-sharded.
            pending = [
                t
                for t in pending
                if t.tile_id not in merged_ids and t.tile_id not in finished
            ]

            if newly_dead:
                dead.update(newly_dead)
                result.node_deaths = tuple(sorted(dead))
                result.tiles_resharded += len(pending)
                detect = max(
                    self.heartbeat.detection_latency(n) for n in newly_dead
                )
                backoff = retry_policy.delay(
                    ("reshard", tuple(sorted(newly_dead))), round_no
                )
                result.detection_latency += detect
                result.backoff_seconds += backoff
                result.recovery_overhead += detect + backoff
            round_no += 1

        # Drain the out-of-order buffer (everything pending is now done).
        for tid in sorted(finished):
            execution = finished.pop(tid)
            if tid in merged_ids:
                continue
            accumulator.add(execution)
            result.tiles_completed += 1
            merged_ids.add(tid)
            if journal is not None:
                journal.record(execution, accumulator)

        result.rounds = round_no if round_no > 0 else 1

        # Gather + merge over the survivors (reduce tree of partials).
        survivors = [n for n in range(cluster.n_nodes) if n not in dead]
        partial_bytes = float(spec.n_q_seg) * spec.d * (policy.itemsize + 8)
        result.gather_time = cluster_reduce_time(
            partial_bytes, topology, survivors or None
        )
        covering = max(1, round(result.tiles_total**0.5))
        n_mergers = max(len(survivors), 1)
        reduce_rounds = max(len(survivors) - 1, 0).bit_length()
        result.merge_time = (
            float(spec.n_q_seg)
            * spec.d
            * covering
            * MERGE_TIME_PER_ELEMENT
            / n_mergers
            + result.tiles_total * TILE_DISPATCH_OVERHEAD / n_mergers
            + reduce_rounds * float(spec.n_q_seg) * spec.d * MERGE_TIME_PER_ELEMENT
        )
        result.merge_elements = accumulator.merge_elements
        result.costs = dict(accumulator.costs)
        if numeric:
            result.profile = accumulator.host_profile()
            result.index = accumulator.host_index()
        self.last_run = result
        return result

    # ------------------------------------------------------------------

    def run_journaled(
        self,
        spec: JobSpec,
        path,
        n_tiles: int | None = None,
        **kwargs,
    ) -> ClusterRunResult:
        """Run with a fresh journal at ``path`` (cluster spec stashed in
        the journal's ``extra`` metadata for :func:`resume_cluster`)."""
        n_tiles = (
            n_tiles if n_tiles is not None else 4 * self.cluster.total_gpus
        )
        plan = spec.plan(n_tiles=n_tiles)
        journal = RunJournal.create(
            path, spec, plan, extra={"cluster": self.cluster.to_dict()}
        )
        return self.run(spec, n_tiles, plan=plan, journal=journal, **kwargs)


def resume_cluster(
    path,
    *,
    cluster: ClusterSpec | None = None,
    node_faults: NodeFaultPlan | None = None,
    **dispatcher_kwargs,
) -> ClusterRunResult:
    """Continue a journaled cluster run after a coordinator crash.

    Rebuilds the spec/plan from the journal, re-creates the
    :class:`ClusterSpec` from the journal's ``extra`` metadata (unless
    overridden — survivors of the original storm may be a smaller
    fleet), restores the accumulator snapshot, and re-executes only the
    tiles the journal does not hold.  Bit-identical to an uninterrupted
    run: the journal is always an ascending-tile-id prefix, so the
    resumed merge continues in exactly the serial order.
    """
    journal = RunJournal.open(path)
    spec, plan = journal.rebuild()
    if cluster is None:
        stored = journal.extra().get("cluster")
        if stored is None:
            raise ValueError(
                f"journal at {path} was not created by a cluster run "
                f"(no cluster spec in extra metadata)"
            )
        cluster = ClusterSpec.from_dict(stored)
    dispatcher = ClusterDispatcher(
        cluster, node_faults=node_faults, **dispatcher_kwargs
    )
    return dispatcher.run(spec, plan=plan, journal=journal)
