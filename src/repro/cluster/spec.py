"""Cluster description: nodes, per-node GPUs, and the fabric between them.

:class:`ClusterSpec` is the single input naming the fleet a job runs on.
It validates every field by name (the layout-validation error contract:
``ValueError`` messages lead with the offending field), serialises to a
plain dict so the :class:`~repro.engine.checkpoint.RunJournal` can stash
it in its ``extra`` metadata, and knows how to build the inter-node
fabric graph (:meth:`ClusterSpec.topology`).

Defaults describe a Raven-like partition: 4 A100s per node on a
100 Gbit/s (12.5 GB/s effective) interconnect with 2 µs MPI latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import DeviceSpec, get_device
from ..gpu.topology import cluster_topology

__all__ = ["ClusterSpec", "PLACEMENTS"]

#: Sharding strategies the dispatcher understands: ``round_robin``
#: spreads consecutive tiles over the flat (node, gpu) list — the MPI
#: deployment of the paper's Pseudocode 2 assignment — while ``block``
#: gives each node one contiguous run of tiles (fewest cross-node
#: profile-column overlaps, the topology-friendly choice).
PLACEMENTS = ("round_robin", "block")


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous GPU cluster."""

    n_nodes: int
    gpus_per_node: int = 4
    device: str = "A100"
    interconnect_bandwidth: float = 12.5e9  # bytes/s per NIC
    mpi_latency: float = 2.0e-6  # seconds per message
    placement: str = "round_robin"

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.gpus_per_node < 1:
            raise ValueError("cluster needs at least one node and one GPU")
        if self.interconnect_bandwidth <= 0:
            raise ValueError(
                f"interconnect_bandwidth must be > 0 bytes/s, got "
                f"{self.interconnect_bandwidth}"
            )
        if self.mpi_latency <= 0:
            raise ValueError(
                f"mpi_latency must be > 0 seconds, got {self.mpi_latency}"
            )
        try:
            get_device(self.device)
        except Exception as exc:
            raise ValueError(
                f"device: unknown device {self.device!r} ({exc}); a "
                f"heterogeneous fleet is not supported — name one "
                f"registered DeviceSpec"
            ) from None
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got "
                f"{self.placement!r}"
            )

    @property
    def total_gpus(self) -> int:
        return self.n_nodes * self.gpus_per_node

    @property
    def device_spec(self) -> DeviceSpec:
        return get_device(self.device)

    def topology(self):
        """The inter-node fabric graph (fresh copy; faults mutate it)."""
        return cluster_topology(
            self.n_nodes, self.interconnect_bandwidth, self.mpi_latency
        )

    def node_of(self, tile_id: int, n_tiles: int) -> int:
        """Home node of a tile under this spec's placement."""
        if self.placement == "round_robin":
            return (tile_id % self.total_gpus) // self.gpus_per_node
        return min(tile_id * self.n_nodes // max(n_tiles, 1), self.n_nodes - 1)

    def gpu_of(self, tile_id: int) -> int:
        """Within-node GPU of a tile (round-robin over the node's GPUs)."""
        if self.placement == "round_robin":
            return (tile_id % self.total_gpus) % self.gpus_per_node
        return tile_id % self.gpus_per_node

    def to_dict(self) -> dict:
        return {
            "n_nodes": self.n_nodes,
            "gpus_per_node": self.gpus_per_node,
            "device": self.device,
            "interconnect_bandwidth": self.interconnect_bandwidth,
            "mpi_latency": self.mpi_latency,
            "placement": self.placement,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterSpec":
        return cls(**data)
