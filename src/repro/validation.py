"""Cross-implementation validation harness.

The repository contains four independent evaluators of the same quantity
(brute force, mSTAMP, the simulated-GPU pipeline, the anytime variant)
plus the tiled/multi-GPU decompositions that must be invariant.  This
module runs them all on one input and produces an agreement report — the
tool to reach for when porting to new hardware or modifying a kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .baselines.brute_force import brute_force_mdmp
from .baselines.mstamp import mstamp
from .core.anytime import anytime_matrix_profile
from .core.config import RunConfig
from .core.multi_tile import compute_multi_tile
from .core.single_tile import compute_single_tile
from .reporting import format_table

__all__ = ["Agreement", "ValidationReport", "validate_implementations"]


@dataclass(frozen=True)
class Agreement:
    """Pairwise agreement between two implementations."""

    first: str
    second: str
    max_profile_diff: float
    index_match_rate: float

    def ok(self, atol: float = 1e-8, min_match: float = 0.999) -> bool:
        return self.max_profile_diff <= atol and self.index_match_rate >= min_match


@dataclass
class ValidationReport:
    """All pairwise agreements plus convenience accessors."""

    implementations: list[str] = field(default_factory=list)
    agreements: list[Agreement] = field(default_factory=list)

    @property
    def all_ok(self) -> bool:
        return all(a.ok() for a in self.agreements)

    def worst(self) -> Agreement:
        if not self.agreements:
            raise ValueError("empty report")
        return max(self.agreements, key=lambda a: a.max_profile_diff)

    def to_table(self) -> str:
        rows = [
            [
                f"{a.first} vs {a.second}",
                f"{a.max_profile_diff:.3g}",
                f"{a.index_match_rate:.2%}",
                "ok" if a.ok() else "MISMATCH",
            ]
            for a in self.agreements
        ]
        return format_table(
            ["pair", "max |dP|", "index match", "verdict"],
            rows,
            "Cross-implementation agreement (FP64)",
        )


def _agreement(name_a, pa, ia, name_b, pb, ib) -> Agreement:
    finite = np.isfinite(pa) & np.isfinite(pb)
    max_diff = float(np.max(np.abs(pa[finite] - pb[finite]))) if finite.any() else 0.0
    valid = (ia >= 0) & (ib >= 0)
    match = float(np.mean(ia[valid] == ib[valid])) if valid.any() else 1.0
    return Agreement(name_a, name_b, max_diff, match)


def validate_implementations(
    reference: np.ndarray,
    query: np.ndarray | None,
    m: int,
    n_tiles: int = 6,
    n_gpus: int = 2,
) -> ValidationReport:
    """Run every FP64 evaluator on the same input and compare pairwise.

    Implementations compared:

    * ``brute-force``: direct z-normalised distances, O(n² m d);
    * ``mstamp``: the CPU streaming reference;
    * ``gpu-single``: the simulated-GPU single-tile pipeline;
    * ``gpu-tiled``: the multi-tile/multi-GPU decomposition;
    * ``anytime``: the random-order evaluator at fraction 1.0.
    """
    results: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    results["brute-force"] = brute_force_mdmp(reference, query, m)
    results["mstamp"] = mstamp(reference, query, m)
    single = compute_single_tile(reference, query, m, RunConfig(mode="FP64"))
    results["gpu-single"] = (single.profile, single.index)
    tiled = compute_multi_tile(
        reference, query, m, RunConfig(mode="FP64", n_tiles=n_tiles, n_gpus=n_gpus)
    )
    results["gpu-tiled"] = (tiled.profile, tiled.index)
    anytime = anytime_matrix_profile(reference, query, m, fraction=1.0)
    results["anytime"] = (anytime.profile, anytime.index)

    report = ValidationReport(implementations=list(results))
    names = list(results)
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            pa, ia = results[names[i]]
            pb, ib = results[names[j]]
            report.agreements.append(
                _agreement(names[i], pa, ia, names[j], pb, ib)
            )
    return report
