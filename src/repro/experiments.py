"""Registry of the paper's experiments and their regenerators.

The machine-readable version of DESIGN.md's per-experiment index: every
table/figure of the paper maps to the benchmark that regenerates it and
the archived results file it writes.  Used by the CLI (``python -m repro
experiments``) and by documentation tooling.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = ["Experiment", "EXPERIMENTS", "list_experiments", "results_path"]

#: Where the benchmark harness archives its tables.
RESULTS_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "results"


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment of the paper."""

    exp_id: str  # e.g. "fig2"
    paper_item: str  # "Fig. 2", "Table I", ...
    title: str
    bench: str  # benchmark file regenerating it
    result_file: str  # archived table name under benchmarks/results/
    kind: str  # "executed" | "modelled" | "both"


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        "fig2", "Fig. 2", "Numerical accuracy (A, R) vs n, d, m per mode",
        "bench_fig2_numerical_accuracy.py", "fig2_numerical_accuracy", "executed",
    ),
    Experiment(
        "fig3", "Fig. 3", "Embedded-motif recall per pattern P0-P7",
        "bench_fig3_pattern_recall.py", "fig3_pattern_recall", "executed",
    ),
    Experiment(
        "fig4", "Fig. 4", "Kernel execution-time breakdown vs n and d",
        "bench_fig4_kernel_breakdown.py", "fig4_kernel_breakdown", "both",
    ),
    Experiment(
        "fig5", "Fig. 5", "DGX-1 multi-GPU scaling and parallel efficiency",
        "bench_fig5_scaling_dgx1.py", "fig5_scaling_dgx1", "modelled",
    ),
    Experiment(
        "fig6", "Fig. 6", "CPU vs V100 vs A100 cross-generation performance",
        "bench_fig6_cross_generation.py", "fig6_cross_generation", "both",
    ),
    Experiment(
        "fig7", "Fig. 7", "Accuracy-performance trade-off vs tile count",
        "bench_fig7_tiles_tradeoff.py", "fig7_tiles_tradeoff", "both",
    ),
    Experiment(
        "util", "Sec. V-C", "Resource-utilisation / binding-resource analysis",
        "bench_util_resources.py", "util_resources", "modelled",
    ),
    Experiment(
        "fig9", "Figs. 8-9", "HPC-ODA application classification case study",
        "bench_fig9_hpcoda.py", "fig9_hpcoda", "executed",
    ),
    Experiment(
        "fig10", "Fig. 10", "GIAB genome mining: recall and time vs tiles",
        "bench_fig10_giab.py", "fig10_giab", "both",
    ),
    Experiment(
        "table1", "Table I", "Gas-turbine pair categories (scaled counts)",
        "bench_fig12_turbine.py", "table1_turbine_pairs", "executed",
    ),
    Experiment(
        "fig12", "Figs. 11-12", "Turbine startup detection, relaxed recall",
        "bench_fig12_turbine.py", "fig12_turbine", "executed",
    ),
    Experiment(
        "err-model", "Sec. V-B", "Ablation: error bound vs measured error",
        "bench_ablation_error_model.py", "ablation_error_model", "executed",
    ),
    Experiment(
        "design", "Secs. III-IV", "Ablations: sort strategy, streams, layout, Kahan",
        "bench_ablation_design.py", "ablation_sort_strategy", "both",
    ),
    Experiment(
        "ext-tp", "Sec. VII", "Extension: TF32/BFLOAT16 transprecision",
        "bench_ext_transprecision.py", "ext_transprecision", "both",
    ),
    Experiment(
        "ext-mn", "Sec. VII", "Extension: multi-node strong scaling",
        "bench_ext_multinode.py", "ext_multinode", "modelled",
    ),
    Experiment(
        "anytime", "Sec. II-A", "Related work: anytime (STAMP/SCRIMP++) convergence",
        "bench_anytime_convergence.py", "anytime_convergence", "executed",
    ),
    Experiment(
        "memory", "Sec. I", "Memory footprint per mode, largest supportable problem",
        "bench_memory_footprint.py", "memory_footprint", "both",
    ),
    Experiment(
        "traversal", "Sec. II-A", "Ablation: row-order vs diagonal-order anytime convergence",
        "bench_ablation_traversal.py", "ablation_traversal", "executed",
    ),
    Experiment(
        "service", "Sec. VII", "Service: cache throughput + precision-aware load shedding",
        "bench_service_throughput.py", "service_cache_throughput", "executed",
    ),
    Experiment(
        "faults", "Sec. VII", "Fault tolerance: health-check overhead + recovery under fault storms",
        "bench_fault_recovery.py", "fault_recovery", "executed",
    ),
    Experiment(
        "row_blocking", "Sec. III", "Row-blocked kernel execution: per-row vs blocked vs parallel tile workers",
        "bench_row_blocking.py", "row_blocking", "executed",
    ),
    Experiment(
        "precalc_amortization", "Sec. III-A",
        "Amortised precalculation: plan-level stats cache vs per-tile restart",
        "bench_precalc_amortization.py", "precalc_amortization", "executed",
    ),
    Experiment(
        "streaming_ingest", "Sec. VII",
        "Streaming ingestion: incremental band tiles + sketch-gated escalation vs recompute",
        "bench_streaming_ingest.py", "streaming_ingest", "executed",
    ),
    Experiment(
        "autotuner", "Secs. III-B, V",
        "Roofline autotuner: predicted-fastest config vs default and exhaustive search",
        "bench_autotuner.py", "autotuner", "executed",
    ),
    Experiment(
        "multinode_scaling", "Sec. VII",
        "Cluster tier: multi-node weak scaling + 10%-node-storm recovery overhead",
        "bench_multinode_scaling.py", "multinode_scaling", "modelled",
    ),
    Experiment(
        "tensor_core", "Sec. VII",
        "Tensor-core main loop: chained-GEMM panel vs vector path, error vs a-priori bound",
        "bench_tensor_core.py", "tensor_core", "executed",
    ),
    Experiment(
        "symmetric_tiles", "Sec. IV",
        "Symmetric self-join tiling: mirrored triangular grid vs full grid, both backends",
        "bench_symmetric_tiles.py", "symmetric_tiles", "executed",
    ),
)


def list_experiments() -> tuple[Experiment, ...]:
    return EXPERIMENTS


def results_path(exp_id: str) -> Path:
    """Archived results file of one experiment (may not exist yet)."""
    for exp in EXPERIMENTS:
        if exp.exp_id == exp_id:
            return RESULTS_DIR / f"{exp.result_file}.txt"
    valid = ", ".join(e.exp_id for e in EXPERIMENTS)
    raise KeyError(f"unknown experiment {exp_id!r}; expected one of: {valid}")
