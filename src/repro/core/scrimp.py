"""SCRIMP-style diagonal-order evaluation (related work, Section II-A).

The paper's row-wise GPU algorithm inherits from STOMP; the SCRIMP++
lineage it cites instead walks the distance matrix **diagonal by
diagonal**, because Eq. (1)'s recurrence is cheapest along a diagonal
(QT[i+1, j+1] from QT[i, j]): one diagonal costs one seed dot product
plus O(L) updates, and diagonals are mutually independent — which makes
*random diagonal order* an anytime algorithm with even better convergence
behaviour than row sampling (each diagonal spreads its contribution over
the whole profile).

This module implements that traversal for the multi-dimensional profile:
each diagonal yields, per step, the full d-vector of one matrix cell, so
the mSTAMP sort + inclusive-average connection applies cell-wise along
the diagonal (vectorised).  With every diagonal processed the result is
exact and matches the row-order implementations; with a subset it is a
progressively refining upper bound.
"""

from __future__ import annotations

import numpy as np

from ..engine.plan import JobSpec
from ..gpu.kernel import LaunchConfig
from ..kernels.precalc import PrecalcKernel
from ..kernels.sort_scan import bitonic_sort, fanin_inclusive_scan
from ..kernels.update import INDEX_DTYPE
from ..precision.arithmetic import rp_fma
from ..precision.modes import DTYPE_MAX, PrecisionPolicy
from .config import RunConfig
from .result import MatrixProfileResult

__all__ = ["diagonal_matrix_profile", "diagonal_count"]


def diagonal_count(n_r_seg: int, n_q_seg: int) -> int:
    """Number of diagonals of the (n_r_seg x n_q_seg) distance matrix."""
    return n_r_seg + n_q_seg - 1


def _diagonal_cells(k: int, n_r_seg: int, n_q_seg: int) -> tuple[int, int, int]:
    """Start cell (i0, j0) and length of diagonal ``k``.

    Diagonals are indexed k = j - i + (n_r_seg - 1) in [0, n_r+n_q-2]:
    k < n_r_seg starts at (n_r_seg-1-k, 0), otherwise at
    (0, k - n_r_seg + 1).
    """
    if not 0 <= k < diagonal_count(n_r_seg, n_q_seg):
        raise ValueError(f"diagonal {k} out of range")
    if k < n_r_seg:
        i0, j0 = n_r_seg - 1 - k, 0
    else:
        i0, j0 = 0, k - n_r_seg + 1
    length = min(n_r_seg - i0, n_q_seg - j0)
    return i0, j0, length


def diagonal_matrix_profile(
    reference: np.ndarray,
    query: np.ndarray | None,
    m: int,
    config: RunConfig | None = None,
    fraction: float = 1.0,
    seed: int = 0,
) -> MatrixProfileResult:
    """Multi-dimensional matrix profile by (optionally sampled) diagonals.

    ``fraction`` < 1 processes a random subset of diagonals (the SCRIMP
    anytime mode); 1.0 is exact and agrees with the row-order pipeline.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    config = config or RunConfig()
    policy: PrecisionPolicy = config.policy
    dtype = policy.compute

    # Shared engine-level validation: the same d-mismatch / window-too-long
    # ValueErrors as every other entry point (previously a bespoke message).
    spec = JobSpec.from_arrays(reference, query, m, config)
    zone = spec.exclusion_zone
    tr, tq = spec.layouts()
    launch: LaunchConfig = config.launch
    pre = PrecalcKernel(config=launch, policy=policy).run(tr, tq, m)
    d, n_r_seg, n_q_seg = pre.d, pre.n_r_seg, pre.n_q_seg

    df_r = pre.df_r.astype(dtype, copy=False)
    dg_r = pre.dg_r.astype(dtype, copy=False)
    inv_r = pre.inv_r.astype(dtype, copy=False)
    df_q = pre.df_q.astype(dtype, copy=False)
    dg_q = pre.dg_q.astype(dtype, copy=False)
    inv_q = pre.inv_q.astype(dtype, copy=False)
    qt_row0 = pre.qt_row0.astype(dtype, copy=False)
    qt_col0 = pre.qt_col0.astype(dtype, copy=False)

    limit = dtype.type(DTYPE_MAX[np.dtype(dtype)])
    profile = np.full((d, n_q_seg), limit, dtype=policy.storage)
    index = np.full((d, n_q_seg), -1, dtype=INDEX_DTYPE)
    two_m = dtype.type(2 * m)
    one = dtype.type(1)
    divisors = (np.arange(1, d + 1, dtype=np.float64)[:, None]).astype(dtype)

    total = diagonal_count(n_r_seg, n_q_seg)
    rng = np.random.default_rng(seed)
    order = rng.permutation(total) if fraction < 1.0 else np.arange(total)
    todo = order[: max(1, int(round(fraction * total)))]

    with np.errstate(over="ignore", invalid="ignore"):
        for k in todo:
            i0, j0, length = _diagonal_cells(int(k), n_r_seg, n_q_seg)
            rows = np.arange(i0, i0 + length)
            cols = np.arange(j0, j0 + length)

            # Streaming QT along the diagonal from its seed cell:
            # QT[i0, j0] comes from the precalculated first row/column.
            seed_qt = qt_row0[:, j0] if i0 == 0 else qt_col0[:, i0]
            qt = np.empty((d, length), dtype=dtype)
            qt[:, 0] = seed_qt
            # Vectorising the diagonal recurrence exactly (it is a scan)
            # needs a prefix structure; we emulate the device behaviour by
            # stepping the recurrence with rounded FMAs — each step is a
            # (d,) vector op, matching one thread-block step per cell.
            for t in range(1, length):
                step = rp_fma(
                    df_r[:, rows[t]], dg_q[:, cols[t]], qt[:, t - 1], dtype
                )
                qt[:, t] = rp_fma(df_q[:, cols[t]], dg_r[:, rows[t]], step, dtype)

            corr = ((qt * inv_r[:, rows]).astype(dtype) * inv_q[:, cols]).astype(dtype)
            gap = np.maximum((one - corr).astype(dtype), dtype.type(0))
            dist = np.sqrt((two_m * gap).astype(dtype)).astype(dtype)
            dist = np.where(np.isfinite(dist), dist, limit).astype(dtype)

            averaged = (
                fanin_inclusive_scan(bitonic_sort(dist), dtype) / divisors
            ).astype(dtype)

            if zone is not None:
                excluded = np.abs(cols - rows) <= zone
                averaged = np.where(excluded[None, :], limit, averaged)

            target_p = profile[:, cols]
            improved = averaged.astype(policy.storage) < target_p
            target_i = index[:, cols]
            np.copyto(target_p, averaged.astype(policy.storage), where=improved)
            np.copyto(
                target_i,
                np.broadcast_to(rows[None, :], improved.shape),
                where=improved,
            )
            profile[:, cols] = target_p
            index[:, cols] = target_i

    return MatrixProfileResult(
        profile=np.ascontiguousarray(profile.T.astype(np.float64)),
        index=np.ascontiguousarray(index.T),
        mode=policy.mode,
        m=m,
        n_tiles=1,
        n_gpus=1,
    )
