"""Pan matrix profile: the profile across *all* window lengths.

Choosing ``m`` is the matrix profile's one awkward hyper-parameter.  The
pan matrix profile (Madrid et al., "Matrix Profile XX") computes profiles
over a geometric range of window lengths and normalises them onto a
common [0, 1] scale (distances grow like sqrt(2m), so raw profiles are
not comparable across m).  The result answers "is there a motif at *any*
length?" and exposes each motif's natural duration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..engine.plan import JobSpec
from .api import matrix_profile
from .config import RunConfig
from .result import MatrixProfileResult

__all__ = ["PanMatrixProfile", "pan_matrix_profile", "geometric_window_range"]


def geometric_window_range(m_min: int, m_max: int, count: int = 8) -> list[int]:
    """``count`` geometrically spaced window lengths in [m_min, m_max]."""
    if m_min < 2 or m_max < m_min:
        raise ValueError(f"invalid window range [{m_min}, {m_max}]")
    if count < 1:
        raise ValueError("count must be >= 1")
    raw = np.geomspace(m_min, m_max, count)
    windows = sorted({int(round(v)) for v in raw})
    return windows


@dataclass
class PanMatrixProfile:
    """Profiles per window length, on a common normalised scale."""

    windows: list[int]
    results: dict[int, MatrixProfileResult] = field(default_factory=dict)
    k: int = 1

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    def normalized_profile(self, m: int) -> np.ndarray:
        """Profile at window m scaled to [0, 1]: D / (2*sqrt(m)) clipped.

        2*sqrt(m) is the z-normalised distance maximum, so 0 = identical,
        1 = anti-correlated — comparable across window lengths.
        """
        result = self.results[m]
        return np.clip(result.profile_for(self.k) / (2.0 * np.sqrt(m)), 0.0, 1.0)

    def best_window_for(self, position: int) -> tuple[int, float]:
        """(window length, normalised distance) minimising at ``position``.

        Longer windows have fewer positions; windows whose profile no
        longer covers ``position`` are skipped.
        """
        best_m, best_v = -1, np.inf
        for m in self.windows:
            prof = self.normalized_profile(m)
            if position < prof.shape[0] and prof[position] < best_v:
                best_m, best_v = m, float(prof[position])
        if best_m < 0:
            raise ValueError(f"position {position} outside every profile")
        return best_m, best_v

    def global_motif(self) -> tuple[int, int, int]:
        """(window length, query position, match position) of the best
        normalised match anywhere in the pan profile."""
        best = None
        for m in self.windows:
            prof = self.normalized_profile(m)
            j = int(np.argmin(prof))
            candidate = (float(prof[j]), m, j)
            if best is None or candidate < best:
                best = candidate
        _, m, j = best
        return m, j, int(self.results[m].index_for(self.k)[j])


def pan_matrix_profile(
    reference: np.ndarray,
    query: np.ndarray | None = None,
    windows: "list[int] | None" = None,
    m_min: int = 8,
    m_max: int = 128,
    n_windows: int = 6,
    config: RunConfig | None = None,
    k: int = 1,
) -> PanMatrixProfile:
    """Compute the pan matrix profile.

    ``windows`` overrides the geometric range.  Each window length runs
    through the full (simulated-GPU) pipeline with the given config, so
    precision modes and tiling apply per-layer.
    """
    config = config or RunConfig()
    if windows is None:
        windows = geometric_window_range(m_min, m_max, n_windows)
    # Validate once up front at the longest window (the same d-mismatch /
    # window-too-long ValueErrors as the per-window compute paths) so a
    # bad request fails before any layer is computed.
    JobSpec.from_arrays(reference, query, max(windows), config)
    pan = PanMatrixProfile(windows=list(windows), k=k)
    for m in pan.windows:
        pan.results[m] = matrix_profile(
            reference,
            query,
            m=m,
            mode=config.mode,
            device=config.device,
            n_tiles=config.n_tiles,
            n_gpus=config.n_gpus,
        )
    return pan
