"""Result containers for matrix profile computations."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.kernel import KernelCost
from ..gpu.stream import Timeline
from ..precision.modes import PrecisionMode

__all__ = ["MatrixProfileResult"]


@dataclass
class MatrixProfileResult:
    """Multi-dimensional matrix profile ``P`` and index ``I``.

    Attributes
    ----------
    profile:
        ``(n_q_seg, d)`` array.  Column ``k`` is the *k+1-dimensional*
        matrix profile: entry ``[j, k]`` is the smallest mean of the k+1
        best per-dimension z-normalised distances between query segment
        ``j`` and any reference segment (Eq. 3 of the paper).
    index:
        ``(n_q_seg, d)`` int64 array of the minimising reference segment
        positions; -1 where no valid match exists (fully excluded columns).
    mode:
        Precision mode the profile was computed with.
    m:
        Segment (subsequence) length.
    n_tiles, n_gpus:
        Decomposition parameters of the run (1/1 for single-tile).
    timeline:
        Simulated execution timeline; ``timeline.makespan`` is the modelled
        GPU execution time the paper's figures report.
    merge_time:
        Modelled CPU-side tile-merge time (Pseudocode 2, second loop);
        included in :attr:`modeled_time`.
    costs:
        Aggregated per-kernel hardware cost counters.
    h2d_saved_bytes:
        Host-to-device traffic avoided by sharing one upload between the
        identical row/col slices of self-join diagonal tiles.
    precalc_saved_flops:
        Precalculation plane work (mu/inv/df/dg flops) *not* redone
        thanks to the plan-level amortisation layer: the sum over tiles
        of the plane flops they would each have recomputed, minus the
        one-off full-series pass actually charged.  0.0 for single-tile
        runs (nothing to amortise) and for ``amortize_precalc=False``.
    escalations:
        Tile id -> final precision mode, for tiles re-executed up the
        FP16 -> Mixed -> FP32 -> FP64 ladder after failing their health
        checks (or flagged by pre-flight risk scoring).  Empty on a
        healthy run.
    split_tiles:
        Parent tile id -> child tile ids, for tiles split after device
        OOM instead of aborting the job.
    resumed_tiles:
        Tiles restored from a checkpoint journal rather than recomputed
        (:func:`repro.engine.checkpoint.resume_plan`).
    """

    profile: np.ndarray
    index: np.ndarray
    mode: PrecisionMode
    m: int
    n_tiles: int = 1
    n_gpus: int = 1
    timeline: Timeline = field(default_factory=Timeline)
    merge_time: float = 0.0
    costs: dict[str, KernelCost] = field(default_factory=dict)
    h2d_saved_bytes: float = 0.0
    precalc_saved_flops: float = 0.0
    escalations: dict[int, PrecisionMode] = field(default_factory=dict)
    split_tiles: dict[int, tuple[int, ...]] = field(default_factory=dict)
    resumed_tiles: int = 0
    #: Main-loop backend the job actually executed on: ``"numeric"`` or
    #: ``"tensor_core"``.  May differ from ``RunConfig.backend`` when the
    #: request could not be honoured — see :attr:`backend_fallback_reason`.
    backend: str = "numeric"
    #: Why a requested tensor-core backend fell back to the numeric one
    #: (ineligible precision mode, device without tensor cores); ``None``
    #: when the request was honoured or nothing special was requested.
    backend_fallback_reason: str | None = None

    @property
    def n_q_seg(self) -> int:
        return self.profile.shape[0]

    @property
    def d(self) -> int:
        return self.profile.shape[1]

    @property
    def modeled_time(self) -> float:
        """End-to-end modelled execution time in seconds (GPU + merge)."""
        return self.timeline.makespan + self.merge_time

    def kernel_breakdown(self) -> dict[str, float]:
        """Modelled seconds per kernel (the stacked bars of Figs. 4 and 5)."""
        return self.timeline.kernel_breakdown()

    def profile_for(self, k: int) -> np.ndarray:
        """The k-dimensional profile vector (1-based ``k`` in [1, d])."""
        if not 1 <= k <= self.d:
            raise ValueError(f"k must be in [1, {self.d}], got {k}")
        return self.profile[:, k - 1]

    def index_for(self, k: int) -> np.ndarray:
        """The k-dimensional profile index vector (1-based ``k``)."""
        if not 1 <= k <= self.d:
            raise ValueError(f"k must be in [1, {self.d}], got {k}")
        return self.index[:, k - 1]

    def motif_location(self, k: int) -> tuple[int, int]:
        """(query position, reference position) of the best k-dim motif."""
        p = self.profile_for(k)
        j = int(np.argmin(p))
        return j, int(self.index_for(k)[j])
