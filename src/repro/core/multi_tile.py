"""Multi-tile / multi-GPU matrix profile (Pseudocode 2).

Tiles are computed as standalone matrix profile tasks (Pseudocode 1) on
their assigned GPUs — real numerics at the requested precision, with the
crucial property that **each tile restarts the precalculation**, bounding
the streaming-error propagation of Eq. (1) — and the per-tile profiles are
merged on the CPU with min/argmin.

Two entry points:

* :func:`compute_multi_tile` — executes the tiles numerically and builds
  the modelled timeline from the recorded kernel costs (accuracy + shape
  experiments at feasible scales).
* :func:`model_multi_tile` — analytic-only: schedules per-tile timings
  from the roofline cost model without touching data, enabling paper-scale
  projections (n = 2^16 and beyond) for Figs. 4–7 and 10.
"""

from __future__ import annotations

import numpy as np

from ..gpu.calibration import MERGE_TIME_PER_ELEMENT, TILE_DISPATCH_OVERHEAD
from ..gpu.kernel import KernelCost
from ..gpu.perfmodel import single_tile_timing
from ..gpu.simulator import GPUSimulator, schedule_tile_timing
from ..kernels.layout import to_device_layout, validate_series
from ..kernels.update import INDEX_DTYPE
from ..precision.modes import DTYPE_MAX
from .config import RunConfig, default_exclusion_zone
from .result import MatrixProfileResult
from .single_tile import _workspace_bytes, run_tile, schedule_tile
from .tiling import Tile, assign_tiles, compute_tile_list

__all__ = ["compute_multi_tile", "model_multi_tile", "merge_tile_outputs"]


def merge_tile_outputs(
    profile: np.ndarray,
    index: np.ndarray,
    tile: Tile,
    tile_profile: np.ndarray,
    tile_index: np.ndarray,
) -> None:
    """CPU-side min/argmin merge of one tile into the global profile.

    ``profile``/``index`` are global (d, n_q_seg) accumulators; the tile
    contributes its query-column slice.  Strict ``<`` keeps the earliest
    reference row on ties (tiles are merged in row-major tile order, so
    this matches the sequential single-tile iteration order).
    """
    sl = slice(tile.col_start, tile.col_stop)
    target_p = profile[:, sl]
    target_i = index[:, sl]
    improved = tile_profile < target_p
    np.copyto(target_p, tile_profile, where=improved)
    np.copyto(target_i, tile_index, where=improved)


def compute_multi_tile(
    reference: np.ndarray,
    query: np.ndarray | None,
    m: int,
    config: RunConfig | None = None,
) -> MatrixProfileResult:
    """Matrix profile via the tiling scheme on simulated multi-GPU hardware.

    ``query=None`` requests a self-join with the default exclusion zone.
    """
    config = config or RunConfig()
    policy = config.policy

    reference = validate_series(reference, "reference")
    self_join = query is None
    query_arr = reference if self_join else validate_series(query, "query")
    if query_arr.shape[1] != reference.shape[1]:
        raise ValueError(
            f"reference has d={reference.shape[1]} but query d={query_arr.shape[1]}"
        )
    zone = config.exclusion_zone
    if self_join and zone is None:
        zone = default_exclusion_zone(m)

    d = reference.shape[1]
    n_r_seg = reference.shape[0] - m + 1
    n_q_seg = query_arr.shape[0] - m + 1
    if n_r_seg < 1 or n_q_seg < 1:
        raise ValueError(f"m={m} too long for the input series")

    tiles = compute_tile_list(n_r_seg, n_q_seg, config.n_tiles)
    assignment = assign_tiles(tiles, config.n_gpus)
    sim = GPUSimulator(config.device, config.n_gpus, config.n_streams)

    tr_layout = to_device_layout(reference, policy.storage)
    tq_layout = (
        tr_layout if self_join else to_device_layout(query_arr, policy.storage)
    )

    limit = policy.storage.type(DTYPE_MAX[policy.storage])
    profile = np.full((d, n_q_seg), limit, dtype=policy.storage)
    index = np.full((d, n_q_seg), -1, dtype=INDEX_DTYPE)
    total_costs: dict[str, KernelCost] = {}
    merge_elements = 0

    for tile, gpu_id in zip(tiles, assignment):
        gpu = sim.gpus[gpu_id]
        r0, r1 = tile.sample_range_rows(m)
        c0, c1 = tile.sample_range_cols(m)
        tr_alloc = gpu.memory.upload(
            np.ascontiguousarray(tr_layout[:, r0:r1]), label=f"Tr{tile.tile_id}"
        )
        tq_alloc = gpu.memory.upload(
            np.ascontiguousarray(tq_layout[:, c0:c1]), label=f"Tq{tile.tile_id}"
        )
        workspace = gpu.memory.reserve(
            _workspace_bytes(tile.n_rows, tile.n_cols, d, policy),
            label=f"ws{tile.tile_id}",
        )
        output = run_tile(
            tr_alloc.array,
            tq_alloc.array,
            m,
            policy,
            config.launch,
            row_offset=tile.row_start,
            col_offset=tile.col_start,
            exclusion_zone=zone,
            sort_strategy=config.sort_strategy,
            fast_path_1d=config.fast_path_1d,
        )
        stream = gpu.next_stream()
        schedule_tile(
            gpu, stream, sim.timeline, output, policy, label=f"tile{tile.tile_id}"
        )
        merge_tile_outputs(profile, index, tile, output.profile, output.indices)
        merge_elements += output.profile.size
        for name, cost in output.costs.items():
            total_costs[name] = (
                cost if name not in total_costs else total_costs[name] + cost
            )
        workspace.free()
        tr_alloc.free()
        tq_alloc.free()

    sim.flush()
    merge_time = (
        merge_elements * MERGE_TIME_PER_ELEMENT
        + len(tiles) * TILE_DISPATCH_OVERHEAD
    )
    return MatrixProfileResult(
        profile=np.ascontiguousarray(profile.T.astype(np.float64)),
        index=np.ascontiguousarray(index.T),
        mode=policy.mode,
        m=m,
        n_tiles=len(tiles),
        n_gpus=config.n_gpus,
        timeline=sim.timeline,
        merge_time=merge_time,
        costs=total_costs,
    )


def model_multi_tile(
    n_seg: int,
    d: int,
    m: int,
    config: RunConfig | None = None,
    n_q_seg: int | None = None,
) -> MatrixProfileResult:
    """Analytic-only multi-tile run at arbitrary (paper) scale.

    Builds the same tile list, assignment and stream schedule as
    :func:`compute_multi_tile`, but with per-tile timings from the
    analytic cost model and **no numerical data** — the returned result
    carries an empty profile and is only meaningful for its
    :attr:`~MatrixProfileResult.modeled_time`, timeline and breakdowns.
    """
    config = config or RunConfig()
    policy = config.policy
    n_q_seg = n_q_seg if n_q_seg is not None else n_seg

    tiles = compute_tile_list(n_seg, n_q_seg, config.n_tiles)
    assignment = assign_tiles(tiles, config.n_gpus)
    sim = GPUSimulator(config.device, config.n_gpus, config.n_streams)

    merge_elements = 0
    for tile, gpu_id in zip(tiles, assignment):
        gpu = sim.gpus[gpu_id]
        timing = single_tile_timing(
            tile.n_rows,
            tile.n_cols,
            d,
            m,
            gpu.spec,
            policy.itemsize,
            config=config.launch,
            precalc_itemsize=policy.precalc.itemsize,
            compensated=policy.compensated,
        )
        stream = gpu.next_stream()
        schedule_tile_timing(
            gpu, stream, sim.timeline, timing, label=f"tile{tile.tile_id}"
        )
        merge_elements += tile.n_cols * d

    sim.flush()
    merge_time = (
        merge_elements * MERGE_TIME_PER_ELEMENT
        + len(tiles) * TILE_DISPATCH_OVERHEAD
    )
    return MatrixProfileResult(
        profile=np.empty((0, d)),
        index=np.empty((0, d), dtype=INDEX_DTYPE),
        mode=policy.mode,
        m=m,
        n_tiles=len(tiles),
        n_gpus=config.n_gpus,
        timeline=sim.timeline,
        merge_time=merge_time,
    )
