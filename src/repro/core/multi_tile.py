"""Multi-tile / multi-GPU matrix profile (Pseudocode 2).

Tiles are computed as standalone matrix profile tasks (Pseudocode 1) on
their assigned GPUs — real numerics at the requested precision, with the
crucial property that **each tile restarts the precalculation**, bounding
the streaming-error propagation of Eq. (1) — and the per-tile profiles are
merged on the CPU with min/argmin.

Both entry points are thin adapters over the execution engine
(:mod:`repro.engine`): the spec/plan layer owns validation and tiling,
:func:`~repro.engine.dispatch.execute_plan` runs the loop, and the
:class:`~repro.engine.accumulate.ProfileAccumulator` owns the merge.

* :func:`compute_multi_tile` — executes the tiles numerically
  (:class:`~repro.engine.backends.NumericBackend`) and builds the
  modelled timeline from the recorded kernel costs (accuracy + shape
  experiments at feasible scales).  Self-join diagonal tiles share one
  upload for their identical row/col slices; the saved H2D traffic is
  reported on the result.
* :func:`model_multi_tile` — analytic-only
  (:class:`~repro.engine.backends.AnalyticBackend`): schedules per-tile
  timings from the roofline cost model without touching data, enabling
  paper-scale projections (n = 2^16 and beyond) for Figs. 4–7 and 10.
"""

from __future__ import annotations

import numpy as np

from ..engine.accumulate import ProfileAccumulator, merge_tile_outputs
from ..engine.backends import AnalyticBackend, TensorCoreBackend, backend_for
from ..engine.checkpoint import RunJournal
from ..engine.dispatch import RoundRobinPlacement, execute_plan
from ..engine.plan import JobSpec
from ..gpu.simulator import GPUSimulator
from ..kernels.update import INDEX_DTYPE
from .config import RunConfig
from .result import MatrixProfileResult

__all__ = ["compute_multi_tile", "model_multi_tile", "merge_tile_outputs"]


def compute_multi_tile(
    reference: np.ndarray,
    query: np.ndarray | None,
    m: int,
    config: RunConfig | None = None,
    *,
    health=None,
    fault_plan=None,
    max_retries: int = 0,
    oom_split: bool = False,
    journal: "RunJournal | str | None" = None,
    observers=(),
    parallel_workers: int | None = None,
) -> MatrixProfileResult:
    """Matrix profile via the tiling scheme on simulated multi-GPU hardware.

    ``query=None`` requests a self-join with the default exclusion zone.

    Fault tolerance (all opt-in; defaults leave the numerics and the
    dispatch byte-identical to the plain path):

    * ``health`` — a :class:`~repro.engine.health.HealthPolicy`
      validating every tile and escalating sick tiles up the precision
      ladder (recorded on :attr:`MatrixProfileResult.escalations`);
    * ``fault_plan`` — a :class:`~repro.engine.faults.FaultPlan` whose
      injector/corruptor hooks exercise the recovery paths;
    * ``max_retries`` — per-tile retry budget for transient device
      failures (placement switches to round-robin so retries can move
      to a different GPU);
    * ``oom_split`` — split a tile on device OOM instead of raising;
    * ``journal`` — a :class:`~repro.engine.checkpoint.RunJournal` (or a
      directory path to create one) checkpointing completed tiles for
      :func:`~repro.engine.checkpoint.resume_plan`;
    * ``parallel_workers`` — host threads executing independent tiles
      concurrently (results merge in tile-id order, so the output is
      deterministic and matches the serial dispatch bit for bit);
      defaults to ``config.parallel_workers`` so autotuned configs carry
      the knob without every caller threading it through.
    """
    config = config or RunConfig()
    if parallel_workers is None:
        parallel_workers = config.parallel_workers
    spec = JobSpec.from_arrays(reference, query, m, config)
    plan = spec.plan()
    failure_injector = corruptor = None
    if fault_plan is not None:
        failure_injector = fault_plan.injector
        corruptor = fault_plan.corruptor
    journal_obj = None
    if journal is not None:
        journal_obj = (
            journal
            if isinstance(journal, RunJournal)
            else RunJournal.create(journal, spec, plan)
        )
    placement = (
        RoundRobinPlacement(config.n_gpus) if max_retries > 0 else None
    )
    sim = GPUSimulator(config.device, config.n_gpus, config.n_streams)
    accumulator = ProfileAccumulator(spec.d, spec.n_q_seg, spec.policy)
    backend, fallback_reason = backend_for(config, discount_shared_h2d=True)
    report = execute_plan(
        plan,
        backend,
        sim,
        accumulator=accumulator,
        placement=placement,
        observers=observers,
        max_retries=max_retries,
        failure_injector=failure_injector,
        health=health,
        corruptor=corruptor,
        oom_split=oom_split,
        journal=journal_obj,
        parallel_workers=parallel_workers,
    )
    return MatrixProfileResult(
        profile=accumulator.host_profile(),
        index=accumulator.host_index(),
        mode=spec.policy.mode,
        m=m,
        n_tiles=report.tiles_total,
        n_gpus=config.n_gpus,
        timeline=sim.timeline,
        merge_time=accumulator.merge_time(report.tiles_total),
        costs=accumulator.costs,
        h2d_saved_bytes=accumulator.h2d_saved_bytes,
        precalc_saved_flops=accumulator.precalc_saved_flops,
        escalations=dict(report.escalations),
        split_tiles=dict(report.splits),
        resumed_tiles=report.tiles_restored,
        backend=(
            "tensor_core" if isinstance(backend, TensorCoreBackend) else "numeric"
        ),
        backend_fallback_reason=fallback_reason,
    )


def model_multi_tile(
    n_seg: int,
    d: int,
    m: int,
    config: RunConfig | None = None,
    n_q_seg: int | None = None,
) -> MatrixProfileResult:
    """Analytic-only multi-tile run at arbitrary (paper) scale.

    Builds the same tile list, assignment and stream schedule as
    :func:`compute_multi_tile`, but with per-tile timings from the
    analytic cost model and **no numerical data** — the returned result
    carries an empty profile and is only meaningful for its
    :attr:`~MatrixProfileResult.modeled_time`, timeline and breakdowns.
    """
    config = config or RunConfig()
    n_q_seg = n_q_seg if n_q_seg is not None else n_seg
    spec = JobSpec.modeled(n_seg, n_q_seg, d, m, config)
    plan = spec.plan()
    sim = GPUSimulator(config.device, config.n_gpus, config.n_streams)
    accumulator = ProfileAccumulator(d, n_q_seg, spec.policy, materialize=False)
    execute_plan(plan, AnalyticBackend(), sim, accumulator=accumulator)
    return MatrixProfileResult(
        profile=np.empty((0, d)),
        index=np.empty((0, d), dtype=INDEX_DTYPE),
        mode=spec.policy.mode,
        m=m,
        n_tiles=plan.n_tiles,
        n_gpus=config.n_gpus,
        timeline=sim.timeline,
        merge_time=accumulator.merge_time(plan.n_tiles),
    )
