"""Public entry point for the multi-dimensional matrix profile."""

from __future__ import annotations

import numpy as np

from ..gpu.device import DeviceSpec
from ..precision.modes import PrecisionMode
from .config import RunConfig
from .multi_tile import compute_multi_tile
from .result import MatrixProfileResult
from .single_tile import compute_single_tile

__all__ = ["matrix_profile"]


def matrix_profile(
    reference: np.ndarray,
    query: np.ndarray | None = None,
    *,
    m: int,
    mode: "PrecisionMode | str" = PrecisionMode.FP64,
    device: "DeviceSpec | str" = "A100",
    n_tiles: int = 1,
    n_gpus: int = 1,
    n_streams: int | None = None,
    exclusion_zone: int | None = None,
    health=None,
    fault_plan=None,
    max_retries: int = 0,
    oom_split: bool = False,
    journal=None,
    observers=(),
    row_block: int | None = None,
    parallel_workers: int | None = None,
    amortize_precalc: bool | None = None,
    precalc_strategy: str | None = None,
    backend: str | None = None,
    symmetric_tiles: bool | None = None,
    auto: bool = False,
    target_error: float | None = None,
    tuner=None,
) -> MatrixProfileResult:
    """Compute the multi-dimensional matrix profile of ``query`` against
    ``reference`` on simulated GPU hardware.

    Parameters
    ----------
    reference:
        Reference time series, shape ``(n, d)`` time-major (1-d allowed).
    query:
        Query time series of matching dimensionality, or ``None`` for a
        self-join (trivial matches excluded with STUMPY's ceil(m/4) zone).
    m:
        Segment (subsequence) length, >= 2.
    mode:
        Precision mode: ``"FP64"``, ``"FP32"``, ``"FP16"``, ``"Mixed"`` or
        ``"FP16C"`` (Section III-C of the paper).
    device:
        Simulated GPU model: ``"A100"`` or ``"V100"``.
    n_tiles:
        Number of tiles of the multi-tile scheme (Pseudocode 2).  More
        tiles bound the error propagation of reduced-precision modes at a
        small merge-overhead cost (Fig. 7).
    n_gpus:
        Simulated GPUs; tiles are assigned round-robin.
    n_streams:
        CUDA streams per GPU (default: the device maximum of 16).
    exclusion_zone:
        Override the self-join trivial-match exclusion radius.
    health, fault_plan, max_retries, oom_split, journal, observers:
        Fault-tolerance knobs forwarded to
        :func:`~repro.core.multi_tile.compute_multi_tile` (all opt-in;
        see that function).  Using any of them routes the computation
        through the tiled engine even for a single-tile configuration,
        since the recovery machinery lives in the tile dispatch loop.
    row_block:
        Main-loop rows executed per kernel super-step
        (:attr:`~repro.core.config.RunConfig.row_block`; default 32).
        Any value is bit-exact — ``1`` recovers the original per-row
        emulation.
    parallel_workers:
        Host threads executing independent tiles concurrently (results
        merge in tile-id order, so output is deterministic and identical
        to serial dispatch).  ``> 1`` routes through the tiled engine.
    amortize_precalc:
        Compute window statistics once per series at plan level and slice
        them per tile instead of recomputing inside every tile
        (:attr:`~repro.core.config.RunConfig.amortize_precalc`; default
        on).  Bit-identical to the per-tile path in every precision mode.
    precalc_strategy:
        ``"exact"`` (default) evolves the seed-QT dot products with the
        streaming accumulator; ``"fft"`` batches them through an FFT
        convolution (FP64/FP32 only; see
        :attr:`~repro.core.config.RunConfig.precalc_strategy`).
    backend:
        Main-loop execution backend: ``"numeric"`` (default, the paper's
        vector recurrence) or ``"tensor_core"`` (the packed-panel
        chained-GEMM path; Mixed/FP16C on tensor-core devices only —
        ineligible jobs fall back with the reason recorded on
        :attr:`~repro.core.result.MatrixProfileResult
        .backend_fallback_reason`).  Changes the numerics: the panel
        accumulates in FP32 under the
        :func:`~repro.precision.errors.tc_gemm_error_bound`.
    symmetric_tiles:
        Self-joins only: build just the diagonal and upper-triangular
        tiles and mirror each off-diagonal tile's distance panel into
        the band its lower-triangle twin would have covered (a 64-tile
        request executes 36 tiles, ~1.8x end-to-end).  Numerics-visible
        like ``backend`` — reduced-precision recurrences restart at the
        triangular grid's tile edges, so profiles are not bit-equal to
        the full grid (they stay inside the same Section V-B bounds);
        part of :meth:`~repro.core.config.RunConfig.cache_key`.
    auto:
        Run the roofline autotuner (:class:`~repro.core.config.RunConfig`
        ``.auto()``) to pick ``row_block``, ``parallel_workers``, tiling
        and precalc strategy for this job's shape.  Without a
        ``target_error`` the tuned knobs are numerics-inert, so the
        profile stays bit-identical to the untuned call.  Explicit
        knob arguments (``row_block`` etc.) override the tuner's choice.
    target_error:
        Error budget for the autotuner (implies ``auto``): the tuner may
        then also change the precision mode and enable the FFT precalc
        path, constrained to candidates whose Section V-B bound stays
        inside the budget.
    tuner:
        Optional prebuilt :class:`~repro.autotune.AutoTuner` to reuse
        calibration and feedback state across calls.

    Returns
    -------
    MatrixProfileResult
        Profile ``P``, index ``I``, the simulated execution timeline and
        aggregated kernel costs.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import matrix_profile
    >>> rng = np.random.default_rng(0)
    >>> ts = rng.normal(size=(512, 4))
    >>> result = matrix_profile(ts, m=32, mode="FP32", n_tiles=4)
    >>> result.profile.shape
    (481, 4)
    """
    config_kwargs = dict(
        mode=mode,
        device=device,
        n_tiles=n_tiles,
        n_gpus=n_gpus,
        n_streams=n_streams,
        exclusion_zone=exclusion_zone,
    )
    if row_block is not None:
        config_kwargs["row_block"] = row_block
    if parallel_workers is not None:
        config_kwargs["parallel_workers"] = parallel_workers
    if amortize_precalc is not None:
        config_kwargs["amortize_precalc"] = amortize_precalc
    if precalc_strategy is not None:
        config_kwargs["precalc_strategy"] = precalc_strategy
    if backend is not None:
        config_kwargs["backend"] = backend
    if symmetric_tiles is not None:
        config_kwargs["symmetric_tiles"] = symmetric_tiles
    config = RunConfig(**config_kwargs)
    decision = None
    if auto or target_error is not None or tuner is not None:
        from ..autotune import AutoTuner

        ref = np.asarray(reference)
        n_r_seg = ref.shape[0] - m + 1
        d = 1 if ref.ndim == 1 else ref.shape[1]
        if query is None:
            n_q_seg, self_join = n_r_seg, True
        else:
            n_q_seg, self_join = np.asarray(query).shape[0] - m + 1, False
        if tuner is None:
            tuner = AutoTuner(device=config.device)
        decision = tuner.tune(
            n_r_seg,
            n_q_seg,
            d,
            m,
            mode=config.mode,
            self_join=self_join,
            target_error=target_error,
            n_gpus=n_gpus,
            n_streams=n_streams,
            exclusion_zone=exclusion_zone,
            n_tiles=n_tiles if n_tiles > 1 else None,
        )
        chosen = decision.chosen
        tuned = {"n_tiles": chosen.n_tiles}
        # Explicit knob arguments always win over the tuner's choice.
        if row_block is None:
            tuned["row_block"] = chosen.row_block
        if parallel_workers is None:
            tuned["parallel_workers"] = chosen.parallel_workers
        if target_error is not None:
            tuned["mode"] = chosen.mode
            # Numerics-visible like the mode itself, so tuner-driven
            # only under an explicit error budget.
            if symmetric_tiles is None:
                tuned["symmetric_tiles"] = chosen.symmetric_tiles
            if precalc_strategy is None:
                tuned["precalc_strategy"] = chosen.precalc_strategy
            if backend is None:
                tuned["backend"] = chosen.backend
        config = config.with_(**tuned)
    fault_tolerant = (
        health is not None
        or fault_plan is not None
        or max_retries > 0
        or oom_split
        or journal is not None
        or bool(observers)
        or config.parallel_workers > 1
    )
    if config.n_tiles == 1 and config.n_gpus == 1 and not fault_tolerant:
        return compute_single_tile(reference, query, m, config)
    feedback = None
    if decision is not None:
        # Close the tuner's predict -> execute -> correct loop: measure
        # this job's dispatch wall time and feed it back as the chosen
        # candidate's cost, so a mispriced point re-ranks next tune call.
        from ..autotune import TuningObserver

        feedback = TuningObserver(tuner, decision.chosen)
        observers = (*observers, feedback)
    result = compute_multi_tile(
        reference,
        query,
        m,
        config,
        health=health,
        fault_plan=fault_plan,
        max_retries=max_retries,
        oom_split=oom_split,
        journal=journal,
        observers=observers,
    )
    if feedback is not None:
        feedback.flush()
    return result
