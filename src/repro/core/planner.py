"""Automatic tile planning: memory capacity + accuracy targets -> n_tiles.

Section III-B motivates the tiling scheme twice over: it "decouples the
size of the distance matrix running on devices from the actual size of the
input", so arbitrarily large problems fit in device memory, and it
"simplifies tuning for accuracy through careful selection of the number of
tiles".  This module turns both arguments into a planner: given the
problem size, precision mode, device and an optional error target, it
returns the smallest tile count that satisfies the memory bound and the
Section V-B error bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..gpu.device import DeviceSpec, get_device
from ..kernels.update import INDEX_DTYPE
from ..precision.errors import streaming_qt_error_bound, tile_edge_for_target_error
from ..precision.modes import PrecisionMode, policy_for
from .tiling import tile_grid_shape

__all__ = ["TilePlan", "tile_memory_bytes", "plan_tiles"]


@dataclass(frozen=True)
class TilePlan:
    """Outcome of the planning step."""

    n_tiles: int
    grid: tuple[int, int]
    tile_rows: int
    tile_cols: int
    tile_bytes: int
    memory_bound_tiles: int  # minimum imposed by device memory
    accuracy_bound_tiles: int  # minimum imposed by the error target (1 if none)
    predicted_error_bound: float

    @property
    def limited_by(self) -> str:
        if self.memory_bound_tiles >= self.accuracy_bound_tiles:
            return "memory"
        return "accuracy"


def tile_memory_bytes(
    tile_rows: int, tile_cols: int, d: int, m: int, mode: "PrecisionMode | str"
) -> int:
    """Device-memory footprint of one resident tile.

    Counts what Pseudocode 1 keeps on the device: the two input slices,
    the eight precalculated vectors, the QT and D planes, and the running
    P/I planes.
    """
    policy = policy_for(mode)
    s = policy.itemsize
    inputs = (tile_rows + m - 1 + tile_cols + m - 1) * d * s
    precalc = (4 * tile_rows + 4 * tile_cols) * d * s
    planes = 2 * tile_cols * d * s  # QT + D row planes
    outputs = tile_cols * d * (s + INDEX_DTYPE.itemsize)
    return int(inputs + precalc + planes + outputs)


def plan_tiles(
    n_r_seg: int,
    n_q_seg: int,
    d: int,
    m: int,
    mode: "PrecisionMode | str" = PrecisionMode.FP64,
    device: "DeviceSpec | str" = "A100",
    target_error: float | None = None,
    concurrent_tiles_per_gpu: int = 16,
    memory_fraction: float = 0.9,
) -> TilePlan:
    """Choose the smallest valid tile count.

    Constraints:

    * **memory** — ``concurrent_tiles_per_gpu`` resident tiles (one per
      stream) must fit in ``memory_fraction`` of device memory;
    * **accuracy** — if ``target_error`` is given, the tile edge must not
      exceed the Section V-B bound inversion for the mode.

    The returned count is rounded up to the next value whose near-square
    grid actually satisfies both constraints.
    """
    if n_r_seg < 1 or n_q_seg < 1:
        raise ValueError("need at least one segment per axis")
    device = get_device(device)
    budget = device.mem_capacity * memory_fraction / max(concurrent_tiles_per_gpu, 1)

    # Minimum tiles for memory: grow until a tile fits the budget.
    memory_tiles = 1
    while True:
        g_r, g_q = tile_grid_shape(memory_tiles)
        rows = math.ceil(n_r_seg / min(g_r, n_r_seg))
        cols = math.ceil(n_q_seg / min(g_q, n_q_seg))
        if tile_memory_bytes(rows, cols, d, m, mode) <= budget:
            break
        if memory_tiles >= n_r_seg * n_q_seg:
            raise ValueError(
                "problem cannot be tiled into device memory: a 1x1-segment "
                f"tile still exceeds the {budget:.3g}-byte per-stream budget"
            )
        memory_tiles *= 2

    # Minimum tiles for the accuracy target: bound the tile row count.
    accuracy_tiles = 1
    if target_error is not None:
        edge = tile_edge_for_target_error(target_error, m, mode)
        g_r_needed = math.ceil(n_r_seg / edge)
        accuracy_tiles = 1
        while tile_grid_shape(accuracy_tiles)[0] < min(g_r_needed, n_r_seg):
            accuracy_tiles *= 2

    n_tiles = max(memory_tiles, accuracy_tiles)
    g = tile_grid_shape(n_tiles)
    # The grid splits each axis into near-equal chunks, so the largest
    # tile edge is the ceiling split — no need to materialise the list.
    rows = math.ceil(n_r_seg / min(g[0], n_r_seg))
    cols = math.ceil(n_q_seg / min(g[1], n_q_seg))
    return TilePlan(
        n_tiles=n_tiles,
        grid=g,
        tile_rows=rows,
        tile_cols=cols,
        tile_bytes=tile_memory_bytes(rows, cols, d, m, mode),
        memory_bound_tiles=memory_tiles,
        accuracy_bound_tiles=accuracy_tiles,
        predicted_error_bound=streaming_qt_error_bound(rows, m, mode),
    )
