"""Anytime (interruptible) matrix profile computation.

STAMP's defining property — and the heart of SCRIMP++ in the paper's
related work — is that processing the distance matrix in *random order*
makes the intermediate result a progressively refining approximation: the
profile after x% of the work already resolves most nearest neighbours.
The GPU algorithm of the paper iterates rows in order (the streaming
recurrence demands it); this module provides the anytime companion:
reference rows are processed in random order using fresh naive dot
products per row (no recurrence), so computation can stop at any fraction
and still return a valid upper-bound profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.plan import JobSpec
from ..kernels.precalc import PrecalcKernel
from ..kernels.sort_scan import SortScanKernel
from ..kernels.update import UpdateKernel
from ..precision.modes import DTYPE_MAX
from .config import RunConfig
from .result import MatrixProfileResult

__all__ = ["AnytimeState", "anytime_matrix_profile", "convergence_curve"]


@dataclass
class AnytimeState:
    """Intermediate state of an interruptible computation."""

    profile: np.ndarray  # (n_q_seg, d), current upper bound
    index: np.ndarray
    rows_done: int
    rows_total: int

    @property
    def fraction(self) -> float:
        return self.rows_done / self.rows_total if self.rows_total else 1.0


def anytime_matrix_profile(
    reference: np.ndarray,
    query: np.ndarray | None,
    m: int,
    config: RunConfig | None = None,
    fraction: float = 1.0,
    seed: int = 0,
    callback=None,
) -> MatrixProfileResult:
    """Randomised-order matrix profile, stoppable at ``fraction`` of rows.

    ``callback(state: AnytimeState)`` (if given) fires every ~5% of
    progress, enabling convergence monitoring and early termination
    (raise ``StopIteration`` inside the callback to stop immediately).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    config = config or RunConfig()
    policy = config.policy
    dtype = policy.compute

    # Shared engine-level validation: same ValueError family (d-mismatch,
    # window-too-long) and exclusion-zone defaulting as the tiled paths.
    spec = JobSpec.from_arrays(reference, query, m, config)
    zone = spec.exclusion_zone
    tr, tq = spec.layouts()
    pre = PrecalcKernel(config=config.launch, policy=policy).run(tr, tq, m)
    d, n_r_seg, n_q_seg = pre.d, pre.n_r_seg, pre.n_q_seg

    # Centred query windows for per-row naive evaluation: (d, n_q_seg, m).
    q_windows = np.lib.stride_tricks.sliding_window_view(
        tq.astype(dtype, copy=False), m, axis=1
    )
    centered_q = (q_windows - pre.mu_q.astype(dtype)[:, :, None]).astype(dtype)

    sort_scan = SortScanKernel(config=config.launch, policy=policy)
    update = UpdateKernel(config=config.launch, policy=policy)
    update.allocate(d, n_q_seg)

    rng = np.random.default_rng(seed)
    order = rng.permutation(n_r_seg)
    rows_to_do = max(1, int(round(fraction * n_r_seg)))
    report_every = max(1, rows_to_do // 20)
    cols = np.arange(n_q_seg)
    limit = dtype.type(DTYPE_MAX[np.dtype(dtype)])
    tr_c = tr.astype(dtype, copy=False)
    mu_r = pre.mu_r.astype(dtype, copy=False)
    inv_r = pre.inv_r.astype(dtype, copy=False)
    inv_q = pre.inv_q.astype(dtype, copy=False)
    two_m = dtype.type(2 * m)
    one = dtype.type(1)

    done = 0
    with np.errstate(over="ignore", invalid="ignore"):
        for i in order[:rows_to_do]:
            seg = (tr_c[:, i : i + m] - mu_r[:, i : i + 1]).astype(dtype)  # (d, m)
            # Rounded sequential accumulation over m (naive dot per row).
            qt = np.zeros((d, n_q_seg), dtype=dtype)
            for t in range(m):
                qt = (qt + (centered_q[:, :, t] * seg[:, t : t + 1]).astype(dtype)).astype(dtype)
            corr = ((qt * inv_r[:, i : i + 1]).astype(dtype) * inv_q).astype(dtype)
            gap = np.maximum((one - corr).astype(dtype), dtype.type(0))
            dist = np.sqrt((two_m * gap).astype(dtype)).astype(dtype)
            dist = np.where(np.isfinite(dist), dist, limit).astype(dtype)
            averaged = sort_scan.run(dist)
            if zone is None:
                update.run(averaged, int(i))
            else:
                mask = (np.abs(cols - int(i)) <= zone)[None, :]
                update.masked_run(averaged, int(i), mask)
            done += 1
            if callback is not None and (done % report_every == 0 or done == rows_to_do):
                state = AnytimeState(
                    profile=np.ascontiguousarray(update.profile.T.astype(np.float64)),
                    index=np.ascontiguousarray(update.indices.T),
                    rows_done=done,
                    rows_total=n_r_seg,
                )
                try:
                    callback(state)
                except StopIteration:
                    break

    return MatrixProfileResult(
        profile=np.ascontiguousarray(update.profile.T.astype(np.float64)),
        index=np.ascontiguousarray(update.indices.T),
        mode=policy.mode,
        m=m,
        n_tiles=1,
        n_gpus=1,
    )


def convergence_curve(
    reference: np.ndarray,
    query: np.ndarray | None,
    m: int,
    fractions: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 1.0),
    config: RunConfig | None = None,
    tolerance: float = 0.05,
    seed: int = 0,
) -> list[tuple[float, float]]:
    """Fraction-of-work vs fraction-of-converged-profile-entries curve.

    An entry counts as converged when its anytime profile value is within
    ``tolerance`` (relative) of the exact value — the anytime property
    says this curve rises far faster than the diagonal.
    """
    exact = anytime_matrix_profile(
        reference, query, m, config=config, fraction=1.0, seed=seed
    )
    curve = []
    for fraction in fractions:
        approx = anytime_matrix_profile(
            reference, query, m, config=config, fraction=fraction, seed=seed
        )
        denom = np.maximum(np.abs(exact.profile), 1e-12)
        rel = np.abs(approx.profile - exact.profile) / denom
        curve.append((fraction, float(np.mean(rel <= tolerance))))
    return curve
