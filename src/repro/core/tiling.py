"""Tiling scheme for the multi-tile / multi-GPU algorithm (Pseudocode 2).

The distance matrix is partitioned into a near-square ``g_r x g_q`` grid of
tiles (``g_r * g_q = n_tiles``); each tile is a *standalone* matrix profile
task over its reference-row and query-column ranges and is assigned to a
GPU round-robin ("enabling maximum balance for parallel execution").

Two properties the paper builds on:

* the device only ever holds a tile-sized working set, decoupling problem
  size from device memory;
* each tile repeats the ``precalculation``, so the streaming recurrence of
  Eq. (1) restarts at the tile boundary — bounding the error propagation
  to the tile edge length (the accuracy lever of Fig. 7 / Fig. 10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "Tile",
    "tile_grid_shape",
    "compute_tile_list",
    "compute_symmetric_tile_list",
    "assign_tiles",
]


@dataclass(frozen=True)
class Tile:
    """One tile of the (reference-segments x query-segments) matrix.

    ``row_*`` index reference segments, ``col_*`` query segments; both are
    half-open ranges.  ``sample_*`` give the input-series sample ranges a
    tile needs (segment range extended by m-1 samples).

    ``mirror`` marks a strictly upper-triangular tile of a symmetric
    self-join grid: its distance panel is consumed twice — the usual
    column-wise reduce for columns ``[col_start, col_stop)`` plus a
    row-wise reduce whose transposed-index contribution covers columns
    ``[row_start, row_stop)`` of the global profile.
    """

    tile_id: int
    row_start: int
    row_stop: int
    col_start: int
    col_stop: int
    mirror: bool = False

    @property
    def n_rows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def n_cols(self) -> int:
        return self.col_stop - self.col_start

    def sample_range_rows(self, m: int) -> tuple[int, int]:
        return self.row_start, self.row_stop + m - 1

    def sample_range_cols(self, m: int) -> tuple[int, int]:
        return self.col_start, self.col_stop + m - 1


def tile_grid_shape(n_tiles: int) -> tuple[int, int]:
    """Near-square factorisation ``(g_r, g_q)`` with ``g_r * g_q = n_tiles``.

    ``g_r`` is the largest divisor of ``n_tiles`` not exceeding its square
    root, so powers of two (the paper sweeps 1..1024) give perfect or
    half-split squares: 16 -> 4x4, 32 -> 4x8, 256 -> 16x16.
    """
    if n_tiles < 1:
        raise ValueError(f"n_tiles must be >= 1, got {n_tiles}")
    g_r = 1
    for cand in range(1, int(math.isqrt(n_tiles)) + 1):
        if n_tiles % cand == 0:
            g_r = cand
    return g_r, n_tiles // g_r


def _splits(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous near-equal ranges."""
    base, extra = divmod(total, parts)
    ranges = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def compute_tile_list(n_r_seg: int, n_q_seg: int, n_tiles: int) -> list[Tile]:
    """Partition the distance matrix into ``n_tiles`` tiles (row-major order).

    If ``n_tiles`` exceeds what the segment counts allow, the grid is
    clamped (every tile must hold at least one row and one column).
    """
    if n_r_seg < 1 or n_q_seg < 1:
        raise ValueError("need at least one segment in each direction")
    g_r, g_q = tile_grid_shape(n_tiles)
    g_r = min(g_r, n_r_seg)
    g_q = min(g_q, n_q_seg)
    tiles = []
    tile_id = 0
    for row_start, row_stop in _splits(n_r_seg, g_r):
        for col_start, col_stop in _splits(n_q_seg, g_q):
            tiles.append(Tile(tile_id, row_start, row_stop, col_start, col_stop))
            tile_id += 1
    return tiles


def compute_symmetric_tile_list(n_seg: int, n_tiles: int) -> list[Tile]:
    """Diagonal + upper-triangular tiles of a symmetric self-join grid.

    The distance matrix of a self-join is symmetric (D(i, j) = D(j, i)),
    so only the upper triangle of a ``g x g`` band grid needs computing:
    diagonal tiles are computed as usual, and each strictly-upper tile is
    marked ``mirror=True`` so its panel also emits the transposed
    contribution for the lower-triangle twin it replaces.  ``g`` is the
    larger factor of :func:`tile_grid_shape`, so per-tile edges never
    exceed those of the full rectangular grid (the error-bound lever of
    Fig. 7 is preserved or improved).

    Tiles are emitted in (band_row, band_col) lexicographic order with
    sequential ids.  Together with the strict-``<`` merge this preserves
    the earliest-index tie-break: for any profile column, contributions
    arrive in ascending reference-band order (direct tiles in band-row
    order, then mirrored contributions in band-col order), exactly as the
    full grid's row-major merge does.
    """
    if n_seg < 1:
        raise ValueError("need at least one segment")
    g = max(tile_grid_shape(n_tiles))
    g = min(g, n_seg)
    bands = _splits(n_seg, g)
    tiles = []
    tile_id = 0
    for bi, (row_start, row_stop) in enumerate(bands):
        for col_start, col_stop in bands[bi:]:
            tiles.append(
                Tile(
                    tile_id,
                    row_start,
                    row_stop,
                    col_start,
                    col_stop,
                    mirror=col_start > row_start,
                )
            )
            tile_id += 1
    return tiles


def assign_tiles(tiles: list[Tile], n_gpus: int) -> list[int]:
    """Static round-robin device assignment: tile ``t`` -> GPU ``t % n_gpus``.

    Round-robin balances perfectly when ``n_gpus`` divides the tile count;
    otherwise the remainder creates the makespan imbalance the paper
    observes for odd GPU counts on 16 tiles (Fig. 5).
    """
    if n_gpus < 1:
        raise ValueError(f"n_gpus must be >= 1, got {n_gpus}")
    return [tile.tile_id % n_gpus for tile in tiles]
