"""Single-tile multi-dimensional matrix profile (Pseudocode 1).

The tile algorithm: asynchronously copy the inputs to the device, run the
``precalculation`` kernel once, then iterate over reference rows invoking
``dist_calc`` -> ``sort_&_incl_scan`` -> ``update_mat_prof``, and copy the
profile back.  The numerical work happens in the mode's precision; the
simulated device/stream machinery produces the modelled timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..gpu.kernel import KernelCost, LaunchConfig
from ..gpu.perfmodel import TileTiming, kernel_time
from ..gpu.simulator import GPUSimulator, SimulatedGPU, schedule_tile_timing
from ..gpu.stream import Stream, Timeline
from ..kernels.dist_calc import DistCalcKernel
from ..kernels.layout import to_device_layout, validate_series
from ..kernels.precalc import PrecalcKernel
from ..kernels.sort_scan import SortScanKernel
from ..kernels.sort_scan_batch import BatchSortScanKernel
from ..kernels.update import INDEX_DTYPE, UpdateKernel
from ..precision.modes import PrecisionPolicy
from .config import RunConfig, default_exclusion_zone
from .result import MatrixProfileResult

__all__ = [
    "TileOutput",
    "run_tile",
    "schedule_tile",
    "tile_timing_from_output",
    "compute_single_tile",
]

KERNEL_ORDER = ("precalculation", "dist_calc", "sort_&_incl_scan", "update_mat_prof")


def _workspace_bytes(n_r_seg: int, n_q_seg: int, d: int, policy: PrecisionPolicy) -> int:
    """Device footprint of a tile's intermediates beyond the raw inputs:
    the eight precalculated vectors, the QT and D row planes, and the
    running P/I output planes (cf. ``core.planner.tile_memory_bytes``)."""
    s = policy.itemsize
    precalc = (4 * n_r_seg + 4 * n_q_seg) * d * s
    planes = 2 * n_q_seg * d * s
    outputs = n_q_seg * d * (s + INDEX_DTYPE.itemsize)
    return int(precalc + planes + outputs)

#: Maps kernel class cost names to the paper's kernel labels.
_KERNEL_LABELS = {
    "PrecalcKernel": "precalculation",
    "DistCalcKernel": "dist_calc",
    "SortScanKernel": "sort_&_incl_scan",
    "BatchSortScanKernel": "sort_&_incl_scan",
    "UpdateKernel": "update_mat_prof",
}


@dataclass
class TileOutput:
    """Numerical output + hardware costs of one executed tile."""

    profile: np.ndarray  # (d, n_q_seg), storage dtype, dimension-wise layout
    indices: np.ndarray  # (d, n_q_seg), int64, *global* reference positions
    costs: dict[str, KernelCost] = field(default_factory=dict)
    h2d_bytes: float = 0.0
    d2h_bytes: float = 0.0


def run_tile(
    tr_dev: np.ndarray,
    tq_dev: np.ndarray,
    m: int,
    policy: PrecisionPolicy,
    launch: LaunchConfig,
    row_offset: int = 0,
    col_offset: int = 0,
    exclusion_zone: int | None = None,
    sort_strategy: str = "bitonic",
    fast_path_1d: bool = True,
) -> TileOutput:
    """Execute the kernels of one tile; pure numerics + cost accounting.

    ``tr_dev``/``tq_dev`` are (d, len) device-layout arrays in the storage
    dtype.  ``row_offset``/``col_offset`` locate the tile inside the global
    distance matrix (indices recorded in the output are global).
    ``exclusion_zone`` (for self-joins) suppresses matches with
    ``|global_row - global_col| <= zone``.  ``sort_strategy`` selects the
    cooperative bitonic kernel or the batch-based ablation alternative;
    ``fast_path_1d`` skips the sort/scan entirely for d == 1 (identity).
    """
    d = tr_dev.shape[0]
    n_r_seg = tr_dev.shape[1] - m + 1
    n_q_seg = tq_dev.shape[1] - m + 1
    if n_r_seg < 1 or n_q_seg < 1:
        raise ValueError(f"m={m} leaves no segments for tile of shape "
                         f"{tr_dev.shape} x {tq_dev.shape}")

    precalc = PrecalcKernel(config=launch, policy=policy)
    dist = DistCalcKernel(config=launch, policy=policy)
    if sort_strategy == "batch":
        sort_scan = BatchSortScanKernel(config=launch, policy=policy)
    else:
        sort_scan = SortScanKernel(config=launch, policy=policy)
    update = UpdateKernel(config=launch, policy=policy)
    skip_sort = fast_path_1d and d == 1

    pre = precalc.run(tr_dev, tq_dev, m)
    dist.bind(pre)
    update.allocate(d, n_q_seg)

    cols_global = np.arange(n_q_seg) + col_offset
    for i in range(n_r_seg):
        plane = dist.run(i)
        averaged = plane if skip_sort else sort_scan.run(plane)
        if exclusion_zone is None:
            update.run(averaged, i, row_offset=row_offset)
        else:
            mask = (np.abs(cols_global - (i + row_offset)) <= exclusion_zone)[None, :]
            update.masked_run(averaged, i, mask, row_offset=row_offset)

    itemsize = policy.itemsize
    h2d_bytes = float((tr_dev.shape[1] + tq_dev.shape[1]) * d * itemsize)
    d2h_bytes = float(n_q_seg * d * (itemsize + INDEX_DTYPE.itemsize))
    costs = {
        _KERNEL_LABELS[c.name]: replace(c, name=_KERNEL_LABELS[c.name])
        for c in (precalc.cost, dist.cost, sort_scan.cost, update.cost)
    }
    return TileOutput(
        profile=update.profile,
        indices=update.indices,
        costs=costs,
        h2d_bytes=h2d_bytes,
        d2h_bytes=d2h_bytes,
    )


def tile_timing_from_output(
    output: TileOutput, policy: PrecisionPolicy, device
) -> TileTiming:
    """Convert an executed tile's recorded costs to modelled timings."""
    d, n_q_seg = output.profile.shape
    working_set = 6.0 * n_q_seg * d * policy.itemsize
    timing = TileTiming(h2d_bytes=output.h2d_bytes, d2h_bytes=output.d2h_bytes)
    for name in KERNEL_ORDER:
        cost = output.costs[name]
        itemsize = (
            policy.precalc.itemsize if name == "precalculation" else policy.itemsize
        )
        timing.kernels[name] = kernel_time(
            cost, device, itemsize, working_set=working_set
        )
    return timing


def schedule_tile(
    gpu: SimulatedGPU,
    stream: Stream,
    timeline: Timeline,
    output: TileOutput,
    policy: PrecisionPolicy,
    label: str = "tile0",
) -> None:
    """Place one executed tile's operations on a simulated stream.

    The four kernels are aggregated over rows: the engine-exclusive total
    is identical to interleaved per-row scheduling.
    """
    timing = tile_timing_from_output(output, policy, gpu.spec)
    schedule_tile_timing(gpu, stream, timeline, timing, label)


def compute_single_tile(
    reference: np.ndarray,
    query: np.ndarray | None,
    m: int,
    config: RunConfig | None = None,
) -> MatrixProfileResult:
    """Matrix profile of ``query`` against ``reference`` on one simulated GPU.

    ``query=None`` requests a self-join (with the default exclusion zone).
    Host series are (n, d) time-major; 1-d input means d=1.
    """
    config = config or RunConfig()
    policy = config.policy

    reference = validate_series(reference, "reference")
    self_join = query is None
    query_arr = reference if self_join else validate_series(query, "query")
    if query_arr.shape[1] != reference.shape[1]:
        raise ValueError(
            f"reference has d={reference.shape[1]} but query d={query_arr.shape[1]}"
        )
    zone = config.exclusion_zone
    if self_join and zone is None:
        zone = default_exclusion_zone(m)
    if not self_join and config.exclusion_zone is None:
        zone = None

    sim = GPUSimulator(config.device, n_gpus=1, n_streams=config.n_streams or 1)
    gpu = sim.gpus[0]

    tr_dev_alloc = gpu.memory.upload(
        to_device_layout(reference, policy.storage), label="Tr"
    )
    tq_dev_alloc = (
        tr_dev_alloc
        if self_join
        else gpu.memory.upload(to_device_layout(query_arr, policy.storage), label="Tq")
    )
    workspace = gpu.memory.reserve(
        _workspace_bytes(
            reference.shape[0] - m + 1, query_arr.shape[0] - m + 1,
            reference.shape[1], policy,
        ),
        label="workspace",
    )

    output = run_tile(
        tr_dev_alloc.array,
        tq_dev_alloc.array,
        m,
        policy,
        config.launch,
        exclusion_zone=zone,
        sort_strategy=config.sort_strategy,
        fast_path_1d=config.fast_path_1d,
    )
    stream = gpu.next_stream()
    schedule_tile(gpu, stream, sim.timeline, output, policy)
    sim.flush()
    workspace.free()
    tr_dev_alloc.free()
    if not self_join:
        tq_dev_alloc.free()

    return MatrixProfileResult(
        profile=np.ascontiguousarray(output.profile.T.astype(np.float64)),
        index=np.ascontiguousarray(output.indices.T),
        mode=policy.mode,
        m=m,
        n_tiles=1,
        n_gpus=1,
        timeline=sim.timeline,
        costs=output.costs,
    )
