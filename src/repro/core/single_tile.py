"""Single-tile multi-dimensional matrix profile (Pseudocode 1).

The tile algorithm: asynchronously copy the inputs to the device, run the
``precalculation`` kernel once, then iterate over reference rows invoking
``dist_calc`` -> ``sort_&_incl_scan`` -> ``update_mat_prof``, and copy the
profile back.  The numerical work happens in the mode's precision; the
simulated device/stream machinery produces the modelled timeline.

The tile *primitive* (:func:`run_tile`, :class:`TileOutput`,
:func:`schedule_tile`, :func:`tile_timing_from_output`) lives in
:mod:`repro.engine.backends` now — this module re-exports it unchanged
for backwards compatibility and keeps :func:`compute_single_tile`, the
one-tile adapter over the engine's dispatch loop.
"""

from __future__ import annotations

import numpy as np

from ..engine.backends import (  # noqa: F401 - re-exported API
    KERNEL_ORDER,
    _KERNEL_LABELS,
    TileOutput,
    NumericBackend,
    TensorCoreBackend,
    backend_for,
    run_tile,
    schedule_tile,
    tile_timing_from_output,
    workspace_bytes,
)
from ..engine.dispatch import execute_plan
from ..engine.plan import JobSpec
from ..gpu.simulator import GPUSimulator
from .config import RunConfig
from .result import MatrixProfileResult

__all__ = [
    "TileOutput",
    "run_tile",
    "schedule_tile",
    "tile_timing_from_output",
    "compute_single_tile",
]

#: Backwards-compatible alias (pre-engine name of the footprint helper).
_workspace_bytes = workspace_bytes


def compute_single_tile(
    reference: np.ndarray,
    query: np.ndarray | None,
    m: int,
    config: RunConfig | None = None,
) -> MatrixProfileResult:
    """Matrix profile of ``query`` against ``reference`` on one simulated GPU.

    ``query=None`` requests a self-join (with the default exclusion zone).
    Host series are (n, d) time-major; 1-d input means d=1.
    """
    config = config or RunConfig()
    spec = JobSpec.from_arrays(reference, query, m, config)
    plan = spec.plan(n_tiles=1, n_gpus=1)
    sim = GPUSimulator(config.device, n_gpus=1, n_streams=config.n_streams or 1)
    backend, fallback_reason = backend_for(config)
    report = execute_plan(plan, backend, sim, keep_executions=True)
    output = report.executions[0].output
    return MatrixProfileResult(
        profile=np.ascontiguousarray(output.profile.T.astype(np.float64)),
        index=np.ascontiguousarray(output.indices.T),
        mode=spec.policy.mode,
        m=m,
        n_tiles=1,
        n_gpus=1,
        timeline=sim.timeline,
        costs=output.costs,
        # Exactly 0.0 by construction: the lone tile carries the full
        # plane charge, so nothing was amortised away.
        precalc_saved_flops=report.executions[0].precalc_saved_flops,
        backend=(
            "tensor_core" if isinstance(backend, TensorCoreBackend) else "numeric"
        ),
        backend_fallback_reason=fallback_reason,
    )
