"""The paper's core contribution: single-tile and multi-tile/multi-GPU
multi-dimensional matrix profile with reduced-precision modes."""

from .anytime import AnytimeState, anytime_matrix_profile, convergence_curve
from .api import matrix_profile
from .config import RetryPolicy, RunConfig, default_exclusion_zone
from .multi_tile import compute_multi_tile, merge_tile_outputs, model_multi_tile
from .pan import PanMatrixProfile, geometric_window_range, pan_matrix_profile
from .planner import TilePlan, plan_tiles, tile_memory_bytes
from .result import MatrixProfileResult
from .scrimp import diagonal_count, diagonal_matrix_profile
from .single_tile import (
    TileOutput,
    compute_single_tile,
    run_tile,
    schedule_tile,
    tile_timing_from_output,
)
from .tiling import Tile, assign_tiles, compute_tile_list, tile_grid_shape

__all__ = [
    "AnytimeState",
    "anytime_matrix_profile",
    "convergence_curve",
    "TilePlan",
    "plan_tiles",
    "tile_memory_bytes",
    "diagonal_count",
    "diagonal_matrix_profile",
    "PanMatrixProfile",
    "geometric_window_range",
    "pan_matrix_profile",
    "matrix_profile",
    "RetryPolicy",
    "RunConfig",
    "default_exclusion_zone",
    "MatrixProfileResult",
    "TileOutput",
    "compute_single_tile",
    "compute_multi_tile",
    "model_multi_tile",
    "merge_tile_outputs",
    "run_tile",
    "schedule_tile",
    "tile_timing_from_output",
    "Tile",
    "assign_tiles",
    "compute_tile_list",
    "tile_grid_shape",
]
