"""Run configuration: launch parameters, devices, tiling and precision.

Bundles the configuration surface of Pseudocode 1 (``s_block``, ``s_grid``)
and Pseudocode 2 (``n_tiles``, ``n_gpu``) with the precision mode and the
join semantics.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, replace

from ..gpu.device import DeviceSpec, get_device
from ..gpu.kernel import LaunchConfig
from ..precision.modes import PrecisionMode, PrecisionPolicy, policy_for

__all__ = ["RunConfig", "RetryPolicy", "default_exclusion_zone"]


def default_exclusion_zone(m: int) -> int:
    """STUMPY's convention for self-join trivial-match exclusion: ceil(m/4)."""
    return int(math.ceil(m / 4))


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded, jittered exponential backoff for failed-work re-dispatch.

    ``delay(key, attempt)`` returns the wall seconds to wait before retry
    ``attempt`` (0-based: the delay *after* the first failure) of the work
    item identified by ``key``:

        base_delay * multiplier**attempt * (1 - jitter * u)   capped at max_delay

    where ``u`` in [0, 1) is a counter-based uniform hashed from
    ``(seed, key, attempt)`` — the same seed reproduces the same backoff
    schedule regardless of dispatch order, exactly like
    :class:`~repro.engine.faults.FaultPlan` storms.  The default
    ``base_delay=0.0`` preserves the engine's historical immediate-retry
    behaviour (every delay is exactly zero), which is why the policy is
    excluded from :meth:`RunConfig.cache_key`.
    """

    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, key: object, attempt: int) -> float:
        """Backoff before retry ``attempt`` of the work item ``key``."""
        if self.base_delay == 0.0:
            return 0.0
        token = f"{self.seed}:backoff:{key}:{attempt}"
        digest = hashlib.sha256(token.encode()).digest()
        u = int.from_bytes(digest[:8], "big") / 2.0**64
        raw = self.base_delay * self.multiplier**attempt
        return min(raw, self.max_delay) * (1.0 - self.jitter * u)

    def to_dict(self) -> dict:
        return {
            "base_delay": self.base_delay,
            "multiplier": self.multiplier,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        return cls(**data)


@dataclass(frozen=True)
class RunConfig:
    """Complete configuration of a matrix profile run.

    Parameters mirror the tuning knobs of the paper: launch configuration
    (tuned per device architecture), number of tiles and GPUs, stream count,
    and precision mode.
    """

    mode: PrecisionMode = PrecisionMode.FP64
    device: DeviceSpec = None  # type: ignore[assignment]
    launch: LaunchConfig = None  # type: ignore[assignment]
    n_tiles: int = 1
    n_gpus: int = 1
    n_streams: int | None = None
    exclusion_zone: int | None = None  # None => default for self-joins
    #: "bitonic" (the paper's cooperative kernel) or "batch" (the rejected
    #: one-thread-per-sort alternative, kept as an executable ablation).
    sort_strategy: str = "bitonic"
    #: Skip the sort/scan kernel entirely when d == 1 (it is the identity
    #: there) — the fast path the turbine case study (d=1) benefits from.
    fast_path_1d: bool = True
    #: Rows of the main loop executed per super-step: ``dist_calc`` keeps
    #: its sequential QT recurrence but fills ``row_block`` consecutive
    #: row planes into one workspace, and the column-independent
    #: sort/scan/update stages then run once per block.  Bit-exact for
    #: any value (1 = the per-row path); purely a host-emulation batching
    #: knob, so it changes neither the numerics nor the modelled costs.
    #: 32 keeps the block workspace cache-resident and measures fastest.
    row_block: int = 32
    #: Compute the window-statistics planes (mu/inv/df/dg) once per plan
    #: and batch the per-tile seed dots, instead of restarting the full
    #: precalculation per tile.  Bit-exact (the planes are window-local,
    #: so tile slices are elementwise identical) — purely an execution
    #: amortisation, which is why it is on by default and excluded from
    #: ``cache_key()`` just like ``row_block``.
    amortize_precalc: bool = True
    #: How the amortised layer evaluates the seed QT dot products:
    #: ``"exact"`` (the paper's sequential naive dot, bit-identical to
    #: per-tile precalculation) or ``"fft"`` (MASS-style sliding dot
    #: product — O(n log n) but *not* bit-identical, so it is opt-in,
    #: restricted to the FP64/FP32 modes where the error stays within
    #: the analytic dot-product bound, and it *does* enter
    #: ``cache_key()``).
    precalc_strategy: str = "exact"
    #: Main-loop execution backend: ``"numeric"`` (the paper's vector
    #: recurrence) or ``"tensor_core"`` (packed-panel chained-GEMM
    #: super-steps with FP32 accumulation — see
    #: :mod:`repro.kernels.tc_gemm`).  The tensor-core path only exists
    #: for the FP16-storage wide-precalc modes (Mixed, FP16C) on devices
    #: with tensor cores; other configurations fall back to the numeric
    #: backend with the reason recorded on the result.  The two paths are
    #: *not* bit-identical (FP32 accumulation is the point), so unlike
    #: ``row_block`` this knob enters ``cache_key()``.
    backend: str = "numeric"
    #: Exploit self-join symmetry (D(i, j) = D(j, i)): plan only diagonal
    #: + upper-triangular tiles and consume each off-diagonal distance
    #: panel twice — the usual column-wise reduce plus a row-wise
    #: mirrored reduce with transposed indices.  Halves the distance work
    #: but is *not* bit-identical to the full grid (reduced-precision
    #: recurrences restart at tile edges, so the mirrored contribution is
    #: computed from the transposed tile's panel), which is why it is
    #: opt-in, rejected for AB-joins, and — unlike ``row_block`` — enters
    #: ``cache_key()``.
    symmetric_tiles: bool = False
    #: Host threads executing independent tiles concurrently.  Results
    #: merge in tile-id order, so the output is deterministic and
    #: bit-identical to serial dispatch — like ``row_block`` this is a
    #: pure host-execution knob, excluded from ``cache_key()``.
    parallel_workers: int = 1
    #: Backoff schedule applied between per-tile retry attempts.  ``None``
    #: (and the ``RetryPolicy()`` default) mean immediate retry — the
    #: engine's historical behaviour.  Retry pacing never changes which
    #: tiles run or how they merge, so like ``parallel_workers`` it is
    #: excluded from ``cache_key()``.
    retry_policy: RetryPolicy | None = None

    def __post_init__(self) -> None:
        # Resolve defaults for device/launch at construction so the frozen
        # dataclass always carries concrete values.
        if self.device is None:
            object.__setattr__(self, "device", get_device("A100"))
        else:
            object.__setattr__(self, "device", get_device(self.device))
        if self.launch is None:
            object.__setattr__(self, "launch", LaunchConfig.tuned_for(self.device))
        object.__setattr__(self, "mode", PrecisionMode.parse(self.mode))
        if self.n_tiles < 1:
            raise ValueError(f"n_tiles must be >= 1, got {self.n_tiles}")
        if self.n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1, got {self.n_gpus}")
        if self.sort_strategy not in ("bitonic", "batch"):
            raise ValueError(
                f"sort_strategy must be 'bitonic' or 'batch', got "
                f"{self.sort_strategy!r}"
            )
        if self.row_block < 1:
            raise ValueError(f"row_block must be >= 1, got {self.row_block}")
        if self.backend not in ("numeric", "tensor_core"):
            raise ValueError(
                f"backend must be 'numeric' or 'tensor_core', got "
                f"{self.backend!r}"
            )
        if self.backend == "tensor_core" and self.sort_strategy == "batch":
            raise ValueError(
                "backend='tensor_core' fuses its own sort/scan (mma_scan); "
                "the batch sort ablation has no wide-panel path"
            )
        if self.parallel_workers < 1:
            raise ValueError(
                f"parallel_workers must be >= 1, got {self.parallel_workers}"
            )
        if self.precalc_strategy not in ("exact", "fft"):
            raise ValueError(
                f"precalc_strategy must be 'exact' or 'fft', got "
                f"{self.precalc_strategy!r}"
            )
        if self.precalc_strategy == "fft":
            if self.mode not in (PrecisionMode.FP64, PrecisionMode.FP32):
                raise ValueError(
                    "precalc_strategy='fft' is validated only for the FP64 "
                    f"and FP32 modes, got {self.mode.value}"
                )
            if not self.amortize_precalc:
                raise ValueError(
                    "precalc_strategy='fft' requires amortize_precalc=True "
                    "(the FFT seeds live in the amortisation layer)"
                )

    @property
    def policy(self) -> PrecisionPolicy:
        return policy_for(self.mode)

    @classmethod
    def auto(
        cls,
        n_r_seg: int,
        n_q_seg: int | None = None,
        d: int = 1,
        m: int = 64,
        *,
        mode: "PrecisionMode | str" = PrecisionMode.FP64,
        device: "DeviceSpec | str" = "A100",
        target_error: float | None = None,
        n_gpus: int = 1,
        n_streams: int | None = None,
        exclusion_zone: int | None = None,
        self_join: bool = True,
        tuner=None,
        **tuner_kwargs,
    ) -> "RunConfig":
        """Planner-chosen configuration for one job (the roofline autotuner).

        Evaluates candidate ``row_block`` / ``parallel_workers`` / tile
        counts (and, under an explicit ``target_error``, precision mode
        and ``precalc_strategy``) against the calibrated cost model and
        returns the predicted-fastest config.  Absent a ``target_error``
        every tuned knob is numerics-inert, so the profile is
        bit-identical to the default configuration's.

        Pass a prebuilt :class:`~repro.autotune.AutoTuner` as ``tuner``
        to reuse its calibration/feedback state; ``tuner_kwargs`` are
        forwarded to a fresh tuner otherwise.  Use
        :meth:`repro.autotune.AutoTuner.tune` directly to also get the
        :meth:`~repro.autotune.TuneDecision.explain` report.
        """
        from ..autotune import AutoTuner

        if tuner is None:
            tuner = AutoTuner(device=device, **tuner_kwargs)
        decision = tuner.tune(
            n_r_seg,
            n_q_seg if n_q_seg is not None else n_r_seg,
            d,
            m,
            mode=mode,
            self_join=self_join,
            target_error=target_error,
            n_gpus=n_gpus,
            n_streams=n_streams,
            exclusion_zone=exclusion_zone,
        )
        return decision.config

    def with_(self, **changes) -> "RunConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-serialisable view of every numerics-relevant knob.

        The device is stored *by name* (custom :class:`DeviceSpec`
        instances round-trip only if registered with ``get_device``); the
        launch configuration is stored explicitly so a config tuned for
        one device reconstructs identically.
        """
        return {
            "mode": self.mode.value,
            "device": self.device.name,
            "launch": {"grid": self.launch.grid, "block": self.launch.block},
            "n_tiles": self.n_tiles,
            "n_gpus": self.n_gpus,
            "n_streams": self.n_streams,
            "exclusion_zone": self.exclusion_zone,
            "sort_strategy": self.sort_strategy,
            "fast_path_1d": self.fast_path_1d,
            "row_block": self.row_block,
            "backend": self.backend,
            "symmetric_tiles": self.symmetric_tiles,
            "amortize_precalc": self.amortize_precalc,
            "precalc_strategy": self.precalc_strategy,
            "parallel_workers": self.parallel_workers,
            "retry_policy": (
                self.retry_policy.to_dict() if self.retry_policy else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        """Reconstruct a config from :meth:`to_dict` output."""
        data = dict(data)
        launch = data.get("launch")
        if isinstance(launch, dict):
            data["launch"] = LaunchConfig(**launch)
        policy = data.get("retry_policy")
        if isinstance(policy, dict):
            data["retry_policy"] = RetryPolicy.from_dict(policy)
        return cls(**data)

    def cache_key(self) -> str:
        """Stable digest of the configuration, for content-addressed caches.

        Two configs share a key iff :meth:`to_dict` agrees on every field
        that can change the result — the numerics knobs (mode, tile
        count, exclusion zone, sort strategy, 1-d fast path) and the
        performance-model knobs.  ``row_block``, ``amortize_precalc``
        and ``parallel_workers`` are excluded: row-blocked execution,
        amortised precalculation and parallel tile dispatch are bit-exact
        and cost-identical, so cached results are shared across those
        knobs.  ``precalc_strategy``, ``backend`` and ``symmetric_tiles``
        *are* included — the FFT seeds, the tensor-core main loop and the
        mirrored triangular grid are not bit-identical.
        """
        fields = {
            k: v
            for k, v in self.to_dict().items()
            if k
            not in (
                "row_block",
                "amortize_precalc",
                "parallel_workers",
                "retry_policy",
            )
        }
        payload = json.dumps(fields, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]
