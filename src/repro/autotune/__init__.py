"""Roofline-driven autotuner (ISSUE 7).

Entry points: :meth:`repro.core.config.RunConfig.auto` for the one-shot
"give me the fastest config" call, :class:`AutoTuner` for a reusable
tuner with calibration/feedback state, and
:meth:`TuneDecision.explain` for the roofline + candidate report.
"""

from .cost import HostCostModel, modeled_device_seconds, roofline_breakdown
from .feedback import TuningObserver
from .planner import AutoTuner, Candidate, TuneDecision

__all__ = [
    "AutoTuner",
    "Candidate",
    "TuneDecision",
    "HostCostModel",
    "TuningObserver",
    "roofline_breakdown",
    "modeled_device_seconds",
]
