"""The roofline-driven autotuner: candidate generation, ranking, explain.

Given one job's shape (segment counts, dimensionality, window, join
semantics) the tuner enumerates candidate configurations over the
performance knobs the repo accumulated by hand in PRs 4-6 — ``row_block``
(PR 4), ``parallel_workers`` (PR 4), tile count (the
:func:`~repro.core.planner.plan_tiles` memory/accuracy floors),
``precalc_strategy`` (PR 5) and, under an explicit error target, the
precision mode itself — prices each against the calibrated host cost
model plus the device roofline, and returns the predicted-fastest
:class:`~repro.core.config.RunConfig`.

The bit-identity contract: **absent a** ``target_error`` **the tuner only
moves knobs that cannot change a single output bit** — ``row_block``,
``parallel_workers`` and ``amortize_precalc`` are cache-key-excluded
host-execution knobs, and the tile count is pinned to the same memory
floor the default path would be forced onto anyway.  Mode and
``precalc_strategy`` changes (both numerics-visible) happen only when the
caller states an error budget, and then only among candidates whose
Section V-B bound (:func:`~repro.precision.errors.streaming_qt_error_bound`)
stays inside it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.config import RunConfig
from ..core.planner import TilePlan, plan_tiles
from ..core.tiling import tile_grid_shape
from ..gpu.calibration import CalibrationProfile, default_profile
from ..gpu.device import DeviceSpec, get_device
from ..gpu.occupancy import OccupancyResult, best_block_size
from ..precision.errors import (
    dot_product_error_bound,
    streaming_qt_error_bound,
    tc_gemm_error_bound,
)
from ..precision.modes import TENSOR_CORE_MODES, PrecisionMode, policy_for
from ..reporting import format_seconds, format_table
from .cost import HostCostModel, modeled_device_seconds, roofline_breakdown

__all__ = ["AutoTuner", "TuneDecision", "Candidate"]

#: Ladder order used when choosing a mode under an error target: prefer
#: the narrower (faster-on-device) mode on prediction ties.
_MODE_ORDER = (
    PrecisionMode.FP16,
    PrecisionMode.MIXED,
    PrecisionMode.FP16C,
    PrecisionMode.FP32,
    PrecisionMode.FP64,
)


@dataclass(frozen=True)
class Candidate:
    """One evaluated configuration point."""

    mode: PrecisionMode
    n_tiles: int
    row_block: int
    parallel_workers: int
    precalc_strategy: str
    predicted_seconds: float
    error_bound: float
    backend: str = "numeric"
    #: triangular self-join layout (mirrored upper tiles); numerics-
    #: visible, so only ever True under an explicit error target.
    symmetric_tiles: bool = False
    note: str = ""  # rejection reason; empty for viable candidates

    @property
    def rejected(self) -> bool:
        return bool(self.note)


@dataclass
class TuneDecision:
    """The tuner's verdict for one job, with the full candidate record."""

    config: RunConfig
    chosen: Candidate
    candidates: tuple[Candidate, ...]  # predicted-fastest first
    shape: tuple[int, int, int, int]  # n_r_seg, n_q_seg, d, m
    requested_mode: PrecisionMode
    target_error: float | None
    tile_plan: TilePlan | None
    device: str
    roofline: dict[str, dict] = field(default_factory=dict)
    occupancy: OccupancyResult | None = None
    occupancy_block: int = 0
    modeled_device_seconds: float = 0.0
    calibration_source: str = "default"

    @property
    def mode_changed(self) -> bool:
        return self.chosen.mode != self.requested_mode

    def explain(self) -> str:
        """Human-readable report: roofline position, candidates, verdict."""
        n_r, n_q, d, m = self.shape
        lines = [
            f"autotune report — {n_r} x {n_q} segments, d={d}, m={m}, "
            f"{self.device}, requested {self.requested_mode.value}"
            + (
                f", target error {self.target_error:.3g}"
                if self.target_error is not None
                else ""
            ),
            f"calibration: {self.calibration_source}",
        ]
        if self.tile_plan is not None:
            p = self.tile_plan
            lines.append(
                f"tile plan: {p.n_tiles} tile(s) ({p.grid[0]} x {p.grid[1]}), "
                f"{p.tile_rows} x {p.tile_cols} segments each, "
                f"{p.tile_bytes / 1024 ** 2:.1f} MiB, limited by {p.limited_by} "
                f"(memory floor {p.memory_bound_tiles}, "
                f"accuracy floor {p.accuracy_bound_tiles})"
            )
        if self.roofline:
            rows = [
                [
                    name,
                    info["bound"],
                    format_seconds(info["busy"]),
                    f"{info['intensity']:.2f}",
                    f"{info['ridge']:.1f}",
                ]
                for name, info in self.roofline.items()
            ]
            lines.append(
                format_table(
                    ["kernel", "bound by", "busy", "flop/byte", "ridge"],
                    rows,
                    title=f"device roofline ({self.chosen.mode.value})",
                )
            )
        if self.occupancy is not None:
            lines.append(
                f"occupancy: {self.occupancy.occupancy:.0%} at block "
                f"{self.occupancy_block} (limited by {self.occupancy.limiter}); "
                f"modelled device time {format_seconds(self.modeled_device_seconds)}"
            )
        rows = []
        for c in self.candidates:
            marker = "->" if c == self.chosen else ("x" if c.rejected else "")
            rows.append(
                [
                    marker,
                    c.mode.value,
                    c.backend,
                    "sym" if c.symmetric_tiles else "full",
                    c.n_tiles,
                    c.row_block,
                    c.parallel_workers,
                    c.precalc_strategy,
                    format_seconds(c.predicted_seconds),
                    f"{c.error_bound:.3g}",
                    c.note,
                ]
            )
        lines.append(
            format_table(
                [
                    "",
                    "mode",
                    "backend",
                    "grid",
                    "tiles",
                    "row_block",
                    "workers",
                    "precalc",
                    "predicted",
                    "err bound",
                    "note",
                ],
                rows,
                title="candidates (predicted-fastest first, x = rejected)",
            )
        )
        c = self.chosen
        lines.append(
            f"chosen: {c.mode.value}, {c.backend} backend, "
            f"{'symmetric' if c.symmetric_tiles else 'full'} grid, "
            f"{c.n_tiles} tile(s), row_block={c.row_block}, "
            f"workers={c.parallel_workers}, "
            f"precalc={c.precalc_strategy} — predicted "
            f"{format_seconds(c.predicted_seconds)}"
        )
        return "\n".join(lines)


class AutoTuner:
    """Evaluates candidate :class:`RunConfig` points for a job shape.

    Parameters
    ----------
    device:
        Simulated device the job will run on (prices the roofline side).
    calibration:
        A :class:`~repro.gpu.calibration.CalibrationProfile`; defaults to
        the cold-start profile (run ``repro calibrate`` to measure one).
    estimator:
        Optional :class:`~repro.service.admission.LoadEstimator`; when
        attached, its online-learned seconds-per-cell EMA re-anchors the
        absolute host predictions after every completed job.
    row_blocks / workers:
        The candidate grids for the two host-execution knobs.
    max_candidates:
        Cap on the evaluated grid per tune call (safety bound).
    """

    ROW_BLOCKS: tuple[int, ...] = (1, 8, 16, 32, 64, 128)
    WORKERS: tuple[int, ...] = (1, 2, 4)

    def __init__(
        self,
        device: "DeviceSpec | str" = "A100",
        calibration: CalibrationProfile | None = None,
        estimator=None,
        row_blocks: tuple[int, ...] | None = None,
        workers: tuple[int, ...] | None = None,
        concurrent_tiles_per_gpu: int = 16,
        max_accuracy_tiles: int = 4096,
        max_candidates: int = 512,
    ):
        self.device = get_device(device)
        self.calibration = calibration or default_profile(self.device.name)
        self.cost = HostCostModel(self.calibration, estimator)
        self.row_blocks = tuple(row_blocks or self.ROW_BLOCKS)
        self.workers = tuple(workers or self.WORKERS)
        self.concurrent_tiles_per_gpu = concurrent_tiles_per_gpu
        self.max_accuracy_tiles = max_accuracy_tiles
        self.max_candidates = max_candidates
        self._memo: dict[tuple, TuneDecision] = {}

    # ------------------------------------------------------------------

    def observe(
        self, n_r_seg: int, n_q_seg: int, d: int, mode, elapsed: float
    ) -> None:
        """Feed one completed job's wall time back into the cost model."""
        if self.cost.estimator is not None:
            self.cost.estimator.observe(n_r_seg, n_q_seg, d, mode, elapsed)

    def observe_candidate(self, candidate: Candidate, elapsed: float) -> None:
        """Feed one *executed candidate's* measured wall time back.

        Where :meth:`observe` re-anchors the global seconds-per-cell EMA
        (shifting every prediction by the same factor), this updates the
        per-candidate correction keyed on the candidate's own knob tuple
        (mode, row_block, workers, precalc strategy, backend) — so a
        point the structural model mispredicts gets *re-ranked* relative
        to its rivals on the next tune call, not just rescaled with them.
        Clears the decision memo so the corrected ranking takes effect
        immediately.
        """
        self.cost.correct(
            candidate.mode,
            candidate.row_block,
            candidate.parallel_workers,
            candidate.precalc_strategy,
            candidate.backend,
            candidate.predicted_seconds,
            elapsed,
            symmetric=candidate.symmetric_tiles,
        )
        self._memo.clear()

    def tune_spec(self, spec, target_error: float | None = None) -> TuneDecision:
        """Tune an :class:`~repro.engine.plan.JobSpec` (config-preserving
        defaults: the spec's mode, gpus, streams and zone carry over)."""
        cfg = spec.config
        return self.tune(
            spec.n_r_seg,
            spec.n_q_seg,
            spec.d,
            spec.m,
            mode=cfg.mode,
            self_join=spec.self_join,
            target_error=target_error,
            n_gpus=cfg.n_gpus,
            n_streams=cfg.n_streams,
            exclusion_zone=cfg.exclusion_zone,
            n_tiles=cfg.n_tiles if cfg.n_tiles > 1 else None,
        )

    def tune(
        self,
        n_r_seg: int,
        n_q_seg: int,
        d: int,
        m: int,
        *,
        mode: "PrecisionMode | str" = PrecisionMode.FP64,
        self_join: bool = True,
        target_error: float | None = None,
        n_gpus: int = 1,
        n_streams: int | None = None,
        exclusion_zone: int | None = None,
        n_tiles: int | None = None,
    ) -> TuneDecision:
        """Pick the predicted-fastest configuration for one job shape.

        ``n_tiles`` is a caller-imposed floor (the service's requested
        tiling); the tuner never goes below it, nor below the
        memory-planner floor.  Decisions are memoised per shape — stream
        tenants re-tune identical band geometries every append.
        """
        requested = PrecisionMode.parse(mode)
        key = (
            n_r_seg, n_q_seg, d, m, requested.value, self_join, target_error,
            n_gpus, n_streams, exclusion_zone, n_tiles,
        )
        cached = self._memo.get(key)
        if cached is not None:
            return cached

        modes = (
            (requested,)
            if target_error is None
            else tuple(
                sorted(
                    set(_MODE_ORDER) | {requested},
                    key=_MODE_ORDER.index,
                )
            )
        )
        candidates: list[Candidate] = []
        plans: dict[PrecisionMode, TilePlan | None] = {}
        for cand_mode in modes:
            if (
                target_error is not None
                and streaming_qt_error_bound(1, m, cand_mode) > target_error
            ):
                # Even a one-row tile misses the target in this mode.
                # Reject before planning: the accuracy floor would
                # otherwise explode to one tile per segment row.
                candidates.append(
                    Candidate(
                        mode=cand_mode,
                        n_tiles=n_tiles or 1,
                        row_block=self.row_blocks[0],
                        parallel_workers=1,
                        precalc_strategy="exact",
                        predicted_seconds=math.inf,
                        error_bound=streaming_qt_error_bound(1, m, cand_mode),
                        note="error bound above target",
                    )
                )
                candidates.extend(
                    self._tc_rescue(
                        cand_mode, n_r_seg, n_q_seg, d, m, n_tiles,
                        target_error, n_gpus, plans, self_join,
                    )
                )
                continue
            plan = self._plan_for(
                cand_mode, n_r_seg, n_q_seg, d, m, target_error, n_gpus
            )
            plans[cand_mode] = plan
            floor = max(n_tiles or 1, plan.n_tiles if plan else 1)
            tile_rows = (
                plan.tile_rows if plan and floor == plan.n_tiles
                else math.ceil(n_r_seg / max(int(math.isqrt(floor)), 1))
            )
            bound = streaming_qt_error_bound(tile_rows, m, cand_mode)
            if target_error is not None and bound > target_error:
                candidates.append(
                    Candidate(
                        mode=cand_mode,
                        n_tiles=floor,
                        row_block=self.row_blocks[0],
                        parallel_workers=1,
                        precalc_strategy="exact",
                        predicted_seconds=math.inf,
                        error_bound=bound,
                        note="error bound above target",
                    )
                )
                candidates.extend(
                    self._tc_rescue(
                        cand_mode, n_r_seg, n_q_seg, d, m, n_tiles,
                        target_error, n_gpus, plans, self_join,
                    )
                )
                continue
            if plan is not None and plan.accuracy_bound_tiles > self.max_accuracy_tiles:
                candidates.append(
                    Candidate(
                        mode=cand_mode,
                        n_tiles=plan.accuracy_bound_tiles,
                        row_block=self.row_blocks[0],
                        parallel_workers=1,
                        precalc_strategy="exact",
                        predicted_seconds=math.inf,
                        error_bound=bound,
                        note=f"needs {plan.accuracy_bound_tiles} tiles",
                    )
                )
                candidates.extend(
                    self._tc_rescue(
                        cand_mode, n_r_seg, n_q_seg, d, m, n_tiles,
                        target_error, n_gpus, plans, self_join,
                    )
                )
                continue
            candidates.extend(
                self._grid(
                    cand_mode, n_r_seg, n_q_seg, d, m, floor, bound,
                    target_error, self_join=self_join,
                )
            )

        viable = [c for c in candidates if not c.rejected]
        if not viable:
            # Nothing satisfies the target: fall back to the requested
            # mode at its *memory*-floored tiling (best-effort contract —
            # the accuracy floor is what just proved unsatisfiable).
            fallback_plan = self._plan_for(
                requested, n_r_seg, n_q_seg, d, m, None, n_gpus
            )
            plans[requested] = fallback_plan
            floor = max(n_tiles or 1, fallback_plan.n_tiles if fallback_plan else 1)
            viable = self._grid(
                requested, n_r_seg, n_q_seg, d, m, floor,
                streaming_qt_error_bound(
                    math.ceil(n_r_seg / max(int(math.isqrt(floor)), 1)), m, requested
                ),
                None,
            )
            candidates.extend(viable)
        chosen = min(
            viable,
            key=lambda c: (c.predicted_seconds, _MODE_ORDER.index(c.mode)),
        )
        ordered = tuple(
            sorted(candidates, key=lambda c: (c.rejected, c.predicted_seconds))
        )

        config = RunConfig(
            mode=chosen.mode,
            device=self.device,
            n_tiles=chosen.n_tiles,
            n_gpus=n_gpus,
            n_streams=n_streams,
            exclusion_zone=exclusion_zone,
            row_block=chosen.row_block,
            backend=chosen.backend,
            symmetric_tiles=chosen.symmetric_tiles,
            parallel_workers=chosen.parallel_workers,
            precalc_strategy=chosen.precalc_strategy,
        )
        plan = plans.get(chosen.mode)
        tile_rows = plan.tile_rows if plan else n_r_seg
        tile_cols = plan.tile_cols if plan else n_q_seg
        block, occ = best_block_size(self.device)
        decision = TuneDecision(
            config=config,
            chosen=chosen,
            candidates=ordered,
            shape=(n_r_seg, n_q_seg, d, m),
            requested_mode=requested,
            target_error=target_error,
            tile_plan=plan,
            device=self.device.name,
            roofline=roofline_breakdown(
                tile_rows, tile_cols, d, m, chosen.mode, self.device
            ),
            occupancy=occ,
            occupancy_block=block,
            modeled_device_seconds=modeled_device_seconds(
                tile_rows, tile_cols, d, m, chosen.mode, self.device
            ),
            calibration_source=self.calibration.source,
        )
        if len(self._memo) > 256:
            self._memo.clear()
        self._memo[key] = decision
        return decision

    # ------------------------------------------------------------------

    def _plan_for(
        self, mode, n_r_seg, n_q_seg, d, m, target_error, n_gpus
    ) -> TilePlan | None:
        try:
            return plan_tiles(
                n_r_seg,
                n_q_seg,
                d,
                m,
                mode=mode,
                device=self.device,
                target_error=target_error,
                concurrent_tiles_per_gpu=self.concurrent_tiles_per_gpu,
            )
        except ValueError:
            return None

    def _strategies(self, mode, m: int, target_error) -> tuple[str, ...]:
        """Seed-QT strategies admissible for this mode/error budget.

        The FFT path is numerics-visible, so it is a candidate only under
        an explicit error target, in the FP64/FP32 modes it is validated
        for, and when the analytic dot-product bound of the seeds leaves
        the target comfortable headroom.
        """
        if target_error is None or mode not in (
            PrecisionMode.FP64,
            PrecisionMode.FP32,
        ):
            return ("exact",)
        policy = policy_for(mode)
        seed_bound = dot_product_error_bound(m, policy.precalc_eps)
        if seed_bound * 4.0 < target_error:
            return ("exact", "fft")
        return ("exact",)

    def _grid(
        self, mode, n_r_seg, n_q_seg, d, m, n_tiles, bound, target_error,
        backends: "tuple[str, ...] | None" = None,
        self_join: bool = False,
    ) -> list[Candidate]:
        """Evaluate the row_block x workers x precalc x layout grid at
        one tiling."""
        # A near-square grid splits each axis into chunks of at most two
        # distinct sizes, so the whole tiling collapses to <= 4 weighted
        # geometries — pricing stays O(1) however many tiles the
        # accuracy/memory floors demand.
        g_r, g_q = tile_grid_shape(n_tiles)
        g_r, g_q = min(g_r, n_r_seg), min(g_q, n_q_seg)

        def _axis_chunks(total: int, parts: int) -> list[tuple[int, int]]:
            base, extra = divmod(total, parts)
            chunks = [(base + 1, extra), (base, parts - extra)]
            return [(size, count) for size, count in chunks if count and size]

        geometries = [
            (rows, cols, rc * cc)
            for rows, rc in _axis_chunks(n_r_seg, g_r)
            for cols, cc in _axis_chunks(n_q_seg, g_q)
        ]
        max_rows = max(rows for rows, _, _ in geometries)

        # Triangular (symmetric) layout: same weighted-geometry trick
        # over the band grid — g diagonal tiles plus g(g-1)/2 mirrored
        # upper tiles whose panels are reduced twice.  Like a mode
        # change it is numerics-visible (the merge order differs from
        # the full grid's), so it competes only under an error target.
        sym_options: tuple[bool, ...] = (False,)
        sym_geometries = None
        sym_rows = max_rows
        if self_join and target_error is not None and n_tiles > 1:
            g = min(max(tile_grid_shape(n_tiles)), n_r_seg)
            if g > 1:
                bands = _axis_chunks(n_r_seg, g)
                sym_rows = max(size for size, _ in bands)
                sym_geometries = [
                    (size, size, count, False) for size, count in bands
                ]
                for i, (rows, rc) in enumerate(bands):
                    for cols, cc in bands[i:]:
                        pairs = rc * (rc - 1) // 2 if cols == rows else rc * cc
                        if pairs:
                            sym_geometries.append((rows, cols, pairs, True))
                sym_options = (False, True)

        blocks = sorted({min(b, max_rows) for b in self.row_blocks})
        workers = sorted({min(w, n_tiles) for w in self.workers})
        out: list[Candidate] = []
        for strategy in self._strategies(mode, m, target_error):
            for block in blocks:
                for w in workers:
                    for backend in (
                        backends
                        if backends is not None
                        else self._backends(mode, target_error)
                    ):
                        for symmetric in sym_options:
                            if len(out) >= self.max_candidates:
                                return out
                            rows_max = sym_rows if symmetric else max_rows
                            # The mirrored row-wise reduce re-reads
                            # already-computed distances, so the bands'
                            # streaming bound (rows <= the full grid's)
                            # covers both contributions.
                            cand_bound = (
                                streaming_qt_error_bound(rows_max, m, mode)
                                if symmetric
                                else bound
                            )
                            if backend == "tensor_core":
                                # The packed-panel path has its own (FP32-
                                # accumulation) bound, a function of the
                                # row-block chunking; candidates whose bound
                                # misses the target are recorded as rejected
                                # rather than silently dropped.
                                cand_bound = tc_gemm_error_bound(
                                    rows_max, m, mode, row_block=block
                                )
                                if (
                                    target_error is not None
                                    and cand_bound > target_error
                                ):
                                    out.append(
                                        Candidate(
                                            mode=mode,
                                            n_tiles=n_tiles,
                                            row_block=block,
                                            parallel_workers=w,
                                            precalc_strategy=strategy,
                                            predicted_seconds=math.inf,
                                            error_bound=cand_bound,
                                            backend=backend,
                                            symmetric_tiles=symmetric,
                                            note="tc error bound above target",
                                        )
                                    )
                                    continue
                            predicted = self.cost.job_time(
                                sym_geometries if symmetric else geometries,
                                d,
                                m,
                                mode,
                                block,
                                w,
                                precalc_strategy=strategy,
                                n_r_seg=n_r_seg,
                                n_q_seg=n_q_seg,
                                backend=backend,
                                symmetric=symmetric,
                            )
                            out.append(
                                Candidate(
                                    mode=mode,
                                    n_tiles=n_tiles,
                                    row_block=block,
                                    parallel_workers=w,
                                    precalc_strategy=strategy,
                                    predicted_seconds=predicted,
                                    error_bound=cand_bound,
                                    backend=backend,
                                    symmetric_tiles=symmetric,
                                )
                            )
        return out

    def _tc_rescue(
        self, cand_mode, n_r_seg, n_q_seg, d, m, n_tiles, target_error,
        n_gpus, plans, self_join: bool = False,
    ) -> list[Candidate]:
        """Tensor-core-only candidates for a mode whose *vector* accuracy
        floor just failed the target.

        The vector FP16-family bound grows at ``eps16`` per streamed row,
        so a tight target can demand absurd tilings (or be outright
        unsatisfiable) on the vector path — while the tensor-core bound
        grows at ``eps32`` with only a per-block ``eps16`` operand term,
        and may hold the target at the plain *memory*-floored tiling.
        Those candidates are evaluated here (per-candidate bound gating
        happens in :meth:`_grid`); an empty list when the mode/device has
        no tensor-core path.
        """
        if "tensor_core" not in self._backends(cand_mode, target_error):
            return []
        plan = self._plan_for(cand_mode, n_r_seg, n_q_seg, d, m, None, n_gpus)
        floor = max(n_tiles or 1, plan.n_tiles if plan else 1)
        tile_rows = (
            plan.tile_rows if plan and floor == plan.n_tiles
            else math.ceil(n_r_seg / max(int(math.isqrt(floor)), 1))
        )
        plans[cand_mode] = plan
        return self._grid(
            cand_mode, n_r_seg, n_q_seg, d, m, floor,
            streaming_qt_error_bound(tile_rows, m, cand_mode),
            target_error, backends=("tensor_core",), self_join=self_join,
        )

    def _backends(self, mode, target_error) -> tuple[str, ...]:
        """Main-loop backends admissible for this mode/error budget.

        The tensor-core path is numerics-visible (FP32 accumulation is
        not bit-identical to the vector recurrence), so — exactly like a
        mode change — it is only a candidate under an explicit error
        target, and only for the modes/devices that have the path at all.
        """
        if (
            target_error is not None
            and mode in TENSOR_CORE_MODES
            and getattr(self.device, "has_tensor_cores", False)
        ):
            return ("numeric", "tensor_core")
        return ("numeric",)
