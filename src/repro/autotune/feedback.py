"""Live execution feedback: wiring measured tile timings into the tuner.

The autotuner's per-candidate correction EMA
(:meth:`~repro.autotune.AutoTuner.observe_candidate`) only helps if
somebody actually measures the candidate it picked.  A
:class:`TuningObserver` is that somebody: a
:class:`~repro.engine.dispatch.TileObserver` that rides through
``execute_plan``'s existing observer hooks, clocks the wall time from the
first tile start to the last tile completion, and — on :meth:`flush` —
feeds it back as the measured cost of the chosen
:class:`~repro.autotune.Candidate`.  ``matrix_profile(auto=True, ...)``
attaches one automatically whenever the tuned job routes through the
tiled engine, closing the predict → execute → correct loop without any
caller code.
"""

from __future__ import annotations

from time import perf_counter

__all__ = ["TuningObserver"]


class TuningObserver:
    """Measures one tuned job's dispatch wall time for the tuner.

    Parameters
    ----------
    tuner:
        The :class:`~repro.autotune.AutoTuner` that produced the plan.
    candidate:
        The :class:`~repro.autotune.Candidate` the job is executing
        (``TuneDecision.chosen``); its ``predicted_seconds`` is the
        prediction the measurement is compared against.

    The span is first-start to last-complete, so parallel-worker runs
    are measured as the concurrent wall time the cost model predicted,
    not the sum of per-tile times.  Retries and escalations extend the
    span naturally — the candidate really did cost that long.
    """

    def __init__(self, tuner, candidate):
        self.tuner = tuner
        self.candidate = candidate
        self._first_start: float | None = None
        self._last_complete: float | None = None
        self.tiles_completed = 0

    # Structurally a :class:`~repro.engine.dispatch.TileObserver` (not by
    # inheritance — engine.dispatch transitively imports this package).
    def on_tile_start(self, tile, gpu_id, attempt):
        if self._first_start is None:
            self._first_start = perf_counter()

    def on_tile_complete(self, tile, gpu_id, execution):
        self._last_complete = perf_counter()
        self.tiles_completed += 1

    def on_tile_retry(self, tile, gpu_id, attempt, error):
        pass

    def on_deadline(self, remaining):
        pass

    def on_tile_escalate(self, tile, gpu_id, from_mode, to_mode, issues):
        pass

    def on_tile_split(self, tile, children, error):
        pass

    @property
    def elapsed(self) -> float:
        """Measured dispatch span so far (0.0 before any tile finished)."""
        if self._first_start is None or self._last_complete is None:
            return 0.0
        return self._last_complete - self._first_start

    def flush(self) -> float:
        """Feed the measured span into the tuner's correction EMA.

        Returns the elapsed seconds reported (0.0 — and no tuner call —
        when no tile completed, e.g. a fully journal-restored resume).
        Resets the span so a reused observer measures the next job
        afresh.
        """
        elapsed = self.elapsed
        if elapsed > 0.0 and self.tiles_completed > 0:
            self.tuner.observe_candidate(self.candidate, elapsed)
        self._first_start = self._last_complete = None
        self.tiles_completed = 0
        return elapsed
