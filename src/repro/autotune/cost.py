"""Cost model behind the autotuner: host wall time + device roofline.

Two clocks matter when ranking candidate configurations:

* **host wall time** — the kernels execute as real numpy on this machine,
  so the knobs the tuner owns (``row_block``, ``parallel_workers``, tile
  count, precalc strategy) trade python dispatch overhead against
  vectorised throughput.  :class:`HostCostModel` predicts it from the
  measured :class:`~repro.gpu.calibration.CalibrationProfile` constants,
  optionally re-anchored online by the service's learned
  seconds-per-cell EMA (:class:`~repro.service.admission.LoadEstimator`).
* **modelled device time** — the paper's roofline model
  (:mod:`repro.gpu.perfmodel`), which prices precision modes and exposes
  each kernel's binding resource.  :func:`roofline_breakdown` reproduces
  the ``busy = max(dram, l2, l1, flops)`` decision per kernel so the
  :meth:`~repro.autotune.TuneDecision.explain` report can show *which*
  ceiling each kernel sits under and how far from the ridge it is.
"""

from __future__ import annotations

import math

from ..gpu import calibration as cal
from ..gpu.calibration import CalibrationProfile, default_profile
from ..gpu.device import DeviceSpec, get_device
from ..gpu.kernel import LaunchConfig
from ..gpu.perfmodel import single_tile_costs, single_tile_timing
from ..precision.modes import policy_for

__all__ = ["HostCostModel", "roofline_breakdown", "modeled_device_seconds"]

#: Per-cell host multiplier for a mirrored (upper-triangular symmetric)
#: tile: the update kernel re-reads each plane for the row-wise reduce
#: (one extra compare per element; see ``UpdateKernel._record_cost``).
MIRROR_CELL_FACTOR = 1.25


class HostCostModel:
    """Predicts host wall seconds for one candidate configuration.

    The per-cell rate comes from the live ``estimator`` when one is
    attached (the service's EMA, which improves online as jobs complete)
    and from the calibration profile otherwise; the structural overheads
    (per-super-step, per-tile, per-worker) always come from calibration.
    """

    #: EMA weight of the newest measurement in the per-candidate
    #: correction factors (see :meth:`correct`).
    CORRECTION_ALPHA: float = 0.5

    def __init__(
        self,
        calibration: CalibrationProfile | None = None,
        estimator=None,
    ):
        self.calibration = calibration or default_profile()
        self.estimator = estimator
        # Online per-candidate corrections: measured/predicted wall-time
        # ratios keyed by the knob tuple, folded multiplicatively into
        # job_time.  Unlike the estimator's global seconds-per-cell EMA
        # (one anchor for *all* candidates), these shift candidates
        # relative to each other, so a systematically mispredicted point
        # gets re-ranked after it has been observed.
        self._corrections: dict[tuple, float] = {}

    # ------------------------------------------------------------------

    def cell_time(self, mode) -> float:
        """Host seconds per distance-matrix cell-dimension at ``mode``."""
        if self.estimator is not None:
            return self.estimator.seconds_per_cell * self.estimator.mode_factor(
                mode
            )
        return self.calibration.cell_time(mode)

    def _spill_penalty(
        self, row_block: int, plane_elems: int, mode, backend: str = "numeric"
    ) -> float:
        """Per-cell multiplier once the block workspace outgrows cache.

        ``run_tile`` keeps a backend-dependent number of row-block-sized
        planes live per super-step — ~4 on the vector path, ~3 on the
        tensor-core path, whose FP32 pad/accumulate/scan fragments share
        buffers (see ``repro.engine.backends.WORKSPACE_HALF_PLANES``).
        Past the calibrated cache budget the per-cell rate degrades
        linearly up to ``spill_factor``.
        """
        # Deferred: engine.backends transitively imports this package.
        from ..engine.backends import WORKSPACE_HALF_PLANES

        c = self.calibration
        itemsize = policy_for(mode).itemsize
        planes = WORKSPACE_HALF_PLANES.get(
            "tensor_core" if backend == "tensor_core" else "vector", 4
        )
        workspace = float(planes) * row_block * plane_elems * itemsize
        if workspace <= c.workspace_bytes:
            return 1.0
        frac = min((workspace - c.workspace_bytes) / (3.0 * c.workspace_bytes), 1.0)
        return 1.0 + (c.spill_factor - 1.0) * frac

    def tile_time(
        self,
        rows: int,
        cols: int,
        d: int,
        mode,
        row_block: int,
        backend: str = "numeric",
        mirror: bool = False,
    ) -> float:
        """Predicted host seconds for one tile of the main loop.

        ``backend="tensor_core"`` prices the packed-panel GEMM main loop:
        the per-cell rate scales by the calibrated ``tc_cell_factor``
        (< 1 — the fused panel replaces the per-row streaming recurrence)
        and the super-step overhead by ``tc_step_factor`` (> 1 — panel
        packing, shear views and the chained-GEMM dispatch cost more
        python per block).  ``mirror`` prices a symmetric self-join tile
        whose panel is reduced twice (column- and row-wise) by scaling
        the per-cell rate with :data:`MIRROR_CELL_FACTOR`.
        """
        c = self.calibration
        steps = math.ceil(rows / max(row_block, 1))
        penalty = self._spill_penalty(row_block, cols * d, mode, backend)
        cells = float(rows) * cols * d
        step_rate = c.step_time(mode)
        cell_rate = self.cell_time(mode)
        if backend == "tensor_core":
            step_rate *= c.tc_step_factor
            cell_rate *= c.tc_cell_factor
        if mirror:
            cell_rate *= MIRROR_CELL_FACTOR
        return (
            c.tile_overhead
            + steps * step_rate
            + cells * cell_rate * penalty
        )

    def precalc_time(
        self, n_r_seg: int, n_q_seg: int, d: int, m: int, mode, strategy: str
    ) -> float:
        """Predicted host seconds of the amortised seed-QT evaluation.

        ``"exact"`` streams a length-``m`` dot per segment-dimension;
        ``"fft"`` replaces it with an O(n log n) convolution whose
        vectorised constant is ~4x the streaming path's per-element one —
        it wins once ``m`` outgrows ``4 * log2(n)``.
        """
        rate = self.cell_time(mode)
        elems = float(n_r_seg + n_q_seg) * d
        if strategy == "fft":
            n = max(n_q_seg + m - 1, 2)
            return elems * math.log2(n) * rate * 4.0
        return elems * m * rate

    def job_time(
        self,
        tiles,
        d: int,
        m: int,
        mode,
        row_block: int,
        workers: int,
        precalc_strategy: str = "exact",
        n_r_seg: int | None = None,
        n_q_seg: int | None = None,
        backend: str = "numeric",
        symmetric: bool = False,
    ) -> float:
        """Predicted host wall seconds for a whole tiled job.

        ``tiles`` is an iterable of ``(rows, cols)`` tile geometries,
        ``(rows, cols, count)`` weighted geometries, or ``(rows, cols,
        count, mirror)`` — a near-square grid has at most four distinct
        geometries however many tiles it holds, so weighting keeps
        pricing O(1) in the tile count; ``mirror`` marks the
        upper-triangular tiles of a symmetric layout.  Parallel workers
        scale the serial tile time by the calibrated thread-pool
        efficiency, floored at the longest single tile (critical path),
        plus a per-worker spawn cost.  The result is scaled by the
        candidate's online correction factor when one has been observed
        (see :meth:`correct`); ``symmetric`` keys that correction, so
        triangular and full-grid points learn independently.
        """
        times = [
            (self.tile_time(t[0], t[1], d, mode, row_block, backend=backend,
                            mirror=bool(t[3]) if len(t) > 3 else False),
             t[2] if len(t) > 2 else 1)
            for t in tiles
        ]
        if not times:
            return 0.0
        serial = sum(time * count for time, count in times)
        if n_r_seg is not None and n_q_seg is not None:
            serial += self.precalc_time(
                n_r_seg, n_q_seg, d, m, mode, precalc_strategy
            )
        factor = self.correction(
            mode, row_block, workers, precalc_strategy, backend, symmetric
        )
        if workers <= 1:
            return serial * factor
        c = self.calibration
        concurrent = serial / (1.0 + c.parallel_efficiency * (workers - 1))
        longest = max(time for time, _ in times)
        return (
            max(concurrent, longest) + workers * c.worker_overhead
        ) * factor

    # ------------------------------------------------------------------
    # Online per-candidate correction

    @staticmethod
    def _correction_key(
        mode, row_block: int, workers: int, precalc_strategy: str, backend: str,
        symmetric: bool = False,
    ) -> tuple:
        return (
            getattr(mode, "value", str(mode)),
            int(row_block),
            int(workers),
            precalc_strategy,
            backend,
            bool(symmetric),
        )

    def correction(
        self, mode, row_block: int, workers: int, precalc_strategy: str,
        backend: str = "numeric", symmetric: bool = False,
    ) -> float:
        """The learned measured/predicted ratio for one candidate point
        (1.0 until :meth:`correct` has observed it)."""
        return self._corrections.get(
            self._correction_key(
                mode, row_block, workers, precalc_strategy, backend, symmetric
            ),
            1.0,
        )

    def correct(
        self,
        mode,
        row_block: int,
        workers: int,
        precalc_strategy: str,
        backend: str,
        predicted: float,
        measured: float,
        symmetric: bool = False,
    ) -> float:
        """Fold one measured candidate execution into the correction EMA.

        ``predicted`` must be the *uncorrected-at-the-time* prediction the
        candidate ranked with (``Candidate.predicted_seconds``); the new
        factor is the EMA of ``measured / (predicted / old_factor)`` so
        repeated observations converge on the true ratio instead of
        compounding.  Returns the updated factor.
        """
        if predicted <= 0.0 or measured <= 0.0 or not math.isfinite(measured):
            return self.correction(
                mode, row_block, workers, precalc_strategy, backend, symmetric
            )
        key = self._correction_key(
            mode, row_block, workers, precalc_strategy, backend, symmetric
        )
        old = self._corrections.get(key, 1.0)
        # predicted already carries old — divide it back out before
        # forming the raw model ratio.
        ratio = measured * old / predicted
        a = self.CORRECTION_ALPHA
        new = ratio if key not in self._corrections else (1 - a) * old + a * ratio
        self._corrections[key] = new
        return new


# ---------------------------------------------------------------------------
# Device-side roofline reporting


def roofline_breakdown(
    n_r_seg: int,
    n_q_seg: int,
    d: int,
    m: int,
    mode,
    device: "DeviceSpec | str",
) -> dict[str, dict]:
    """Per-kernel roofline position on the modelled device.

    Returns ``{kernel: {"busy": s, "bound": name, "intensity": flop/byte,
    "ridge": flop/byte}}`` — ``bound`` is the term winning the
    ``max(dram, l2, l1, flops)`` race inside
    :func:`~repro.gpu.perfmodel.kernel_time`, ``ridge`` the device's
    DRAM ridge point at this dtype (kernels left of it are memory-bound,
    as Section V-C observes all four are).
    """
    device = get_device(device)
    policy = policy_for(mode)
    launch = LaunchConfig.tuned_for(device)
    costs = single_tile_costs(
        n_r_seg,
        n_q_seg,
        d,
        m,
        policy.itemsize,
        launch,
        precalc_itemsize=policy.precalc.itemsize,
        compensated=policy.compensated,
    )
    scale = cal.device_scale(device.name)
    out: dict[str, dict] = {}
    for name, cost in costs.items():
        itemsize = (
            policy.precalc.itemsize if name == "precalculation" else policy.itemsize
        )
        eff_dram = cal.dram_efficiency(name, itemsize) * device.mem_bandwidth * scale
        terms = {
            "dram": cost.bytes_dram / eff_dram,
            "l2": cost.bytes_l2
            / (cal.L2_EFFICIENCY * device.l2_bandwidth * scale),
            "l1": cost.bytes_l1
            / (cal.l1_efficiency(itemsize) * device.l1_bandwidth * scale)
            if cost.bytes_l1
            else 0.0,
            "flops": cost.flops
            / (cal.SM_EFFICIENCY * device.peak_flops(itemsize)),
        }
        bound = max(terms, key=terms.get)
        traffic = max(cost.bytes_dram, 1.0)
        out[name] = {
            "busy": terms[bound],
            "bound": bound,
            "intensity": cost.flops / traffic,
            "ridge": device.peak_flops(itemsize) / device.mem_bandwidth,
        }
    return out


def modeled_device_seconds(
    n_r_seg: int, n_q_seg: int, d: int, m: int, mode, device
) -> float:
    """Total modelled busy seconds of one tile on the simulated device."""
    policy = policy_for(mode)
    timing = single_tile_timing(
        n_r_seg,
        n_q_seg,
        d,
        m,
        device,
        policy.itemsize,
        precalc_itemsize=policy.precalc.itemsize,
        compensated=policy.compensated,
    )
    return timing.compute_total
