"""repro — reproduction of "Exploiting Reduced Precision for GPU-based Time
Series Mining" (Ju, Raoofy, Yang, Laure, Schulz; IPDPS 2022).

A multi-GPU, reduced-precision multi-dimensional matrix profile library.
The GPU is *simulated*: kernels execute real numpy arithmetic in the
requested precision (FP64/FP32/FP16/Mixed/FP16C) while a calibrated
roofline model over simulated devices, streams and tiles produces the
modelled execution times the paper's figures report.

Quickstart::

    import numpy as np
    from repro import matrix_profile

    ts = np.random.default_rng(0).normal(size=(2048, 8))
    result = matrix_profile(ts, m=64, mode="Mixed", n_tiles=4, n_gpus=2)
    print(result.profile.shape, result.modeled_time)
"""

from .autotune import AutoTuner
from .core import (
    MatrixProfileResult,
    RunConfig,
    anytime_matrix_profile,
    compute_multi_tile,
    compute_single_tile,
    matrix_profile,
    model_multi_tile,
    pan_matrix_profile,
    plan_tiles,
)
from .gpu import A100, SKYLAKE16, V100, GPUSimulator, get_device
from .precision import PrecisionMode, policy_for
from .service import JobRequest, JobStatus, MatrixProfileService
from .streams import (
    IncrementalMatrixProfile,
    StreamIngestService,
    TenantPolicy,
)

__version__ = "1.0.0"

__all__ = [
    "matrix_profile",
    "anytime_matrix_profile",
    "pan_matrix_profile",
    "plan_tiles",
    "MatrixProfileResult",
    "RunConfig",
    "AutoTuner",
    "compute_single_tile",
    "compute_multi_tile",
    "model_multi_tile",
    "PrecisionMode",
    "policy_for",
    "GPUSimulator",
    "get_device",
    "MatrixProfileService",
    "JobRequest",
    "JobStatus",
    "IncrementalMatrixProfile",
    "StreamIngestService",
    "TenantPolicy",
    "A100",
    "V100",
    "SKYLAKE16",
    "__version__",
]
