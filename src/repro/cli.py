"""Command-line interface: ``python -m repro <command>``.

Gives downstream users a zero-code path to the main workflows:

* ``profile``   — compute a matrix profile for a CSV time series
* ``resume``    — resume an interrupted ``profile --journal`` run
* ``demo``      — run the synthetic quickstart (motif discovery)
* ``model``     — print modelled execution times for a problem size
* ``devices``   — list the simulated devices and their specs
* ``serve``     — drive a synthetic workload through the job service
* ``cluster``   — run jobs over a sharded node fleet, optionally under a storm
* ``stream``    — drive tenant streams through the online ingestion tier
* ``submit``    — run one CSV job through the service (deadline-aware)
* ``plan``      — tile planning; ``--explain`` prints the autotuner report
* ``calibrate`` — measure host constants into a calibration profile
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import __version__
from .core.api import matrix_profile
from .core.config import RunConfig
from .core.multi_tile import model_multi_tile
from .gpu.device import DEVICES
from .precision.modes import PrecisionMode
from .reporting import format_seconds, print_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reduced-precision multi-GPU multi-dimensional matrix "
        "profile (IPDPS 2022 reproduction).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", help="matrix profile of a CSV time series")
    p.add_argument("csv", help="input file; one row per sample, one column per dim")
    p.add_argument("--query", help="optional second CSV for an AB-join")
    p.add_argument("-m", "--window", type=int, required=True, help="segment length")
    p.add_argument("--mode", default="FP64", help="precision mode (default FP64)")
    p.add_argument("--device", default="A100", help="simulated device")
    p.add_argument("--tiles", type=int, default=1)
    p.add_argument("--gpus", type=int, default=1)
    p.add_argument(
        "--row-block", type=int, default=None, metavar="B",
        help="main-loop rows per kernel super-step (default 32; "
        "1 = original per-row execution; any value is bit-exact)",
    )
    p.add_argument(
        "--tile-workers", type=int, default=None, metavar="W",
        help="host threads executing independent tiles concurrently "
        "(deterministic tile-id merge order; default 1 = serial)",
    )
    p.add_argument(
        "--auto", action="store_true",
        help="let the roofline autotuner pick row_block / tile workers / "
        "tiling for this job (bit-identical to the default config); "
        "explicit knob flags override its choices",
    )
    p.add_argument(
        "--target-error", type=float, default=None, metavar="EPS",
        help="error budget for --auto: the tuner may then also pick a "
        "cheaper precision mode whose Section V-B bound stays inside it",
    )
    p.add_argument(
        "--precalc-strategy", choices=("exact", "fft"), default=None,
        help="seed-QT batching strategy for the amortised precalc plane "
        "(exact = streaming accumulator, bit-identical to per-tile; "
        "fft = MASS-style convolution, FP64/FP32 only)",
    )
    p.add_argument(
        "--no-amortize-precalc", action="store_true",
        help="recompute window statistics inside every tile instead of "
        "slicing the plan-level precalc plane (debug/comparison knob)",
    )
    p.add_argument("--output", help="write P and I as CSV to this prefix")
    p.add_argument("--top", type=int, default=3, help="motifs to print")
    p.add_argument(
        "--report", action="store_true",
        help="print the Nsight-style kernel profiling report",
    )
    p.add_argument(
        "--journal", metavar="DIR",
        help="checkpoint completed tiles into this directory "
        "(resume an interrupted run with `repro resume DIR`)",
    )
    p.add_argument(
        "--fault-tolerant", action="store_true",
        help="enable per-tile health checks with precision escalation, "
        "transient-failure retries and OOM tile splitting",
    )

    d = sub.add_parser("demo", help="synthetic motif-discovery demo")
    d.add_argument("--mode", default="Mixed")
    d.add_argument("-n", type=int, default=2048)
    d.add_argument("-d", "--dims", type=int, default=8)
    d.add_argument("-m", "--window", type=int, default=64)

    mo = sub.add_parser("model", help="modelled execution time for a problem size")
    mo.add_argument("-n", type=int, required=True, help="number of segments")
    mo.add_argument("-d", "--dims", type=int, required=True)
    mo.add_argument("-m", "--window", type=int, default=64)
    mo.add_argument("--device", default="A100")
    mo.add_argument("--tiles", type=int, default=1)
    mo.add_argument("--gpus", type=int, default=1)

    sub.add_parser("devices", help="list simulated devices")

    e = sub.add_parser("experiments", help="list the paper's experiments")
    e.add_argument("--show", metavar="ID", help="print one archived result table")

    v = sub.add_parser(
        "validate", help="cross-check all implementations on random data"
    )
    v.add_argument("-n", type=int, default=200, help="samples per series")
    v.add_argument("-d", "--dims", type=int, default=3)
    v.add_argument("-m", "--window", type=int, default=16)
    v.add_argument("--seed", type=int, default=0)

    sv = sub.add_parser(
        "serve", help="drive a synthetic multi-tenant workload through the "
        "job service and print the metrics snapshot"
    )
    sv.add_argument("--jobs", type=int, default=12, help="jobs to submit")
    sv.add_argument("-n", type=int, default=512, help="samples per series")
    sv.add_argument("-d", "--dims", type=int, default=3)
    sv.add_argument("-m", "--window", type=int, default=32)
    sv.add_argument("--mode", default="FP64", help="requested precision mode")
    sv.add_argument("--device", default="A100")
    sv.add_argument("--gpus", type=int, default=2)
    sv.add_argument("--workers", type=int, default=2)
    sv.add_argument(
        "--deadline", type=float, default=None,
        help="per-job deadline in seconds (enables precision downgrades)",
    )
    sv.add_argument(
        "--distinct", type=int, default=4,
        help="distinct series in the workload (repeats hit the cache)",
    )
    sv.add_argument("--no-cache", action="store_true", help="disable the result cache")
    sv.add_argument("--seed", type=int, default=0)
    sv.add_argument(
        "--show-ladder", action="store_true",
        help="also print the precision ladder's relative-cost factors",
    )

    cl = sub.add_parser(
        "cluster", help="drive a synthetic workload over a sharded node "
        "fleet — node storms, quotas, backpressure, autoscaling — and "
        "print the cluster health report"
    )
    cl.add_argument("--jobs", type=int, default=4, help="jobs to submit")
    cl.add_argument("-n", type=int, default=300, help="samples per series")
    cl.add_argument("-d", "--dims", type=int, default=2)
    cl.add_argument("-m", "--window", type=int, default=24)
    cl.add_argument("--mode", default="FP64", help="requested precision mode")
    cl.add_argument("--device", default="A100")
    cl.add_argument("--nodes", type=int, default=4, help="fleet size")
    cl.add_argument("--gpus-per-node", type=int, default=2)
    cl.add_argument(
        "--placement", choices=("round_robin", "block"), default="round_robin"
    )
    cl.add_argument(
        "--kill", type=int, default=0, metavar="K",
        help="deterministically crash the first K nodes mid-run",
    )
    cl.add_argument(
        "--crash-rate", type=float, default=0.0,
        help="per-node seeded crash probability (composes with --kill)",
    )
    cl.add_argument(
        "--straggler-rate", type=float, default=0.0,
        help="per-node seeded straggler probability (4x slowdown)",
    )
    cl.add_argument(
        "--degraded-rate", type=float, default=0.0,
        help="per-node seeded degraded-NIC probability (0.25x bandwidth)",
    )
    cl.add_argument("--storm-seed", type=int, default=0, help="fault-plan seed")
    cl.add_argument(
        "--autoscale-max", type=int, default=None, metavar="N",
        help="enable the EMA-backlog autoscaler with this node ceiling",
    )
    cl.add_argument(
        "--quota-pending", type=int, default=None, metavar="Q",
        help="per-tenant pending-job quota (excess submits are shed)",
    )
    cl.add_argument(
        "--max-queue-depth", type=int, default=None, metavar="Q",
        help="global queue-depth backpressure cap",
    )
    cl.add_argument(
        "--tenants", type=int, default=2, help="distinct tenants to cycle"
    )
    cl.add_argument("--seed", type=int, default=0, help="workload seed")

    st = sub.add_parser(
        "stream", help="drive synthetic tenant streams through the online "
        "ingestion tier (exact, sketch-gated, deadline-shed, sliding)"
    )
    st.add_argument("-n", type=int, default=600, help="samples per stream")
    st.add_argument("-d", "--dims", type=int, default=2)
    st.add_argument("-m", "--window", type=int, default=24)
    st.add_argument("--batch", type=int, default=25, help="samples per ingest call")
    st.add_argument("--mode", default="FP32", help="exact tenant precision mode")
    st.add_argument("--device", default="A100")
    st.add_argument("--gpus", type=int, default=2)
    st.add_argument("--seed", type=int, default=0)
    st.add_argument(
        "--deadline", type=float, default=None,
        help="per-append deadline for the shed tenant (enables precision "
        "shedding; omit to skip that tenant)",
    )

    su = sub.add_parser(
        "submit", help="run one CSV job through the service"
    )
    su.add_argument("csv", help="input file; one row per sample, one column per dim")
    su.add_argument("--query", help="optional second CSV for an AB-join")
    su.add_argument("-m", "--window", type=int, required=True, help="segment length")
    su.add_argument("--mode", default="FP64", help="requested precision mode")
    su.add_argument("--device", default="A100")
    su.add_argument("--gpus", type=int, default=1)
    su.add_argument(
        "--deadline", type=float, default=None,
        help="latency budget in seconds (None = best effort)",
    )
    su.add_argument("--priority", type=int, default=0, help="lower runs first")

    r = sub.add_parser(
        "resume", help="resume an interrupted profile run from its journal"
    )
    r.add_argument("journal", help="journal directory written by --journal")
    r.add_argument(
        "--fault-tolerant", action="store_true",
        help="re-run the remaining tiles with health checks and retries",
    )
    r.add_argument("--top", type=int, default=3, help="motifs to print")
    r.add_argument("--output", help="write P and I as CSV to this prefix")

    pl = sub.add_parser("plan", help="plan the tile count for a problem")
    pl.add_argument("-n", type=int, required=True, help="segments per axis")
    pl.add_argument("-d", "--dims", type=int, required=True)
    pl.add_argument("-m", "--window", type=int, default=64)
    pl.add_argument("--mode", default="FP16")
    pl.add_argument("--device", default="A100")
    pl.add_argument("--target-error", type=float, default=None)
    pl.add_argument(
        "--explain", action="store_true",
        help="run the roofline autotuner and print its full report "
        "(roofline position per kernel, occupancy, every candidate "
        "configuration with its predicted time and rejection reason)",
    )

    ca = sub.add_parser(
        "calibrate", help="measure host-execution constants and write a "
        "calibration profile the autotuner can start from"
    )
    ca.add_argument("--device", default="A100", help="simulated device")
    ca.add_argument(
        "--output", metavar="PATH", default=None,
        help="profile path (default calibration_<device>.json)",
    )
    ca.add_argument(
        "-n", type=int, default=160,
        help="segments per measurement series (larger = steadier rates)",
    )
    ca.add_argument("--repeats", type=int, default=2, help="best-of repeats")
    return parser


def _fault_tolerance_kwargs(fault_tolerant: bool) -> dict:
    """Engine knobs behind the ``--fault-tolerant`` CLI flag."""
    if not fault_tolerant:
        return {}
    from .engine.health import HealthPolicy

    return {"health": HealthPolicy(), "max_retries": 2, "oom_split": True}


def _print_result_summary(result, top: int, output: str | None) -> None:
    print(f"profile: {result.profile.shape[0]} segments x {result.d} dims "
          f"({result.mode}, {result.n_tiles} tiles, {result.n_gpus} GPU(s))")
    print(f"modelled device time: {format_seconds(result.modeled_time)}")
    if result.resumed_tiles:
        print(f"resumed: {result.resumed_tiles} tile(s) restored from the journal")
    if result.escalations:
        modes = ", ".join(
            f"tile {tid}->{mode.value}"
            for tid, mode in sorted(result.escalations.items())
        )
        print(f"escalated: {modes}")
    if result.split_tiles:
        print(f"split on OOM: {len(result.split_tiles)} tile(s)")
    if getattr(result, "precalc_saved_flops", 0.0) > 0:
        from .reporting import render_precalc_savings

        print(render_precalc_savings(result))
    from .apps.motif import top_motifs

    rows = [
        [t + 1, mo.query_pos, mo.ref_pos, mo.distance]
        for t, mo in enumerate(top_motifs(result, k=1, count=top))
    ]
    print_table(["#", "query pos", "match pos", "distance"], rows)
    if output:
        np.savetxt(f"{output}_profile.csv", result.profile, delimiter=",")
        np.savetxt(f"{output}_index.csv", result.index, fmt="%d", delimiter=",")
        print(f"wrote {output}_profile.csv and {output}_index.csv")


def _cmd_resume(args: argparse.Namespace) -> int:
    from .engine.checkpoint import resume_plan

    kwargs = _fault_tolerance_kwargs(args.fault_tolerant)
    result = resume_plan(args.journal, **kwargs)
    _print_result_summary(result, args.top, args.output)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    data = np.loadtxt(args.csv, delimiter=",", ndmin=2)
    query = np.loadtxt(args.query, delimiter=",", ndmin=2) if args.query else None
    result = matrix_profile(
        data,
        query,
        m=args.window,
        mode=args.mode,
        device=args.device,
        n_tiles=args.tiles,
        n_gpus=args.gpus,
        journal=args.journal,
        row_block=args.row_block,
        parallel_workers=args.tile_workers,
        amortize_precalc=False if args.no_amortize_precalc else None,
        precalc_strategy=args.precalc_strategy,
        auto=args.auto,
        target_error=args.target_error,
        **_fault_tolerance_kwargs(args.fault_tolerant),
    )
    _print_result_summary(result, args.top, None)
    if args.report:
        from .gpu.profiler import render_report

        print()
        print(render_report(result, args.device))
    if args.output:
        np.savetxt(f"{args.output}_profile.csv", result.profile, delimiter=",")
        np.savetxt(f"{args.output}_index.csv", result.index, fmt="%d", delimiter=",")
        print(f"wrote {args.output}_profile.csv and {args.output}_index.csv")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(0)
    n, d, m = args.n, args.dims, args.window
    ref = rng.normal(size=(n, d))
    qry = rng.normal(size=(n, d))
    wave = 5.0 * np.sin(np.linspace(0, 4 * np.pi, m))
    ref[n // 5 : n // 5 + m, 0] += wave
    qry[3 * n // 5 : 3 * n // 5 + m, 0] += wave
    result = matrix_profile(ref, qry, m=m, mode=args.mode)
    j, i = result.motif_location(1)
    print(f"planted motif: query {3 * n // 5} <-> reference {n // 5}")
    print(f"found motif:   query {j} <-> reference {i} ({args.mode})")
    print(f"modelled A100 time: {format_seconds(result.modeled_time)}")
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    from .gpu.energy import estimate_energy

    rows = []
    for mode in PrecisionMode:
        cfg = RunConfig(
            mode=mode, device=args.device, n_tiles=args.tiles, n_gpus=args.gpus
        )
        r = model_multi_tile(args.n, args.dims, args.window, cfg)
        energy = estimate_energy(r, args.device)
        rows.append(
            [
                mode.value,
                format_seconds(r.timeline.makespan),
                format_seconds(r.merge_time),
                format_seconds(r.modeled_time),
                f"{energy.kilojoules:.2f} kJ",
            ]
        )
    print_table(["mode", "GPU time", "merge", "total", "energy"], rows)
    return 0


def _cmd_devices(_: argparse.Namespace) -> int:
    rows = [
        [
            spec.name,
            spec.kind,
            spec.n_sms,
            f"{spec.peak_flops_fp64 / 1e12:.1f}",
            f"{spec.mem_bandwidth / 1e9:.0f}",
            f"{spec.mem_capacity / 1024**3:.0f}",
            spec.max_streams,
        ]
        for spec in DEVICES.values()
    ]
    print_table(
        ["device", "kind", "SMs/cores", "FP64 TFLOP/s", "BW GB/s", "mem GiB", "streams"],
        rows,
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments import EXPERIMENTS, results_path

    if args.show:
        path = results_path(args.show)
        if not path.exists():
            print(f"no archived result at {path}; run "
                  f"`pytest benchmarks/ --benchmark-only` first")
            return 1
        print(path.read_text())
        return 0
    rows = [
        [e.exp_id, e.paper_item, e.kind, e.title] for e in EXPERIMENTS
    ]
    print_table(["id", "paper", "kind", "experiment"], rows)
    print("regenerate everything with: pytest benchmarks/ --benchmark-only")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .core.planner import plan_tiles

    if args.explain:
        from .autotune import AutoTuner

        decision = AutoTuner(device=args.device).tune(
            args.n,
            args.n,
            args.dims,
            args.window,
            mode=args.mode,
            target_error=args.target_error,
        )
        print(decision.explain())
        return 0
    plan = plan_tiles(
        args.n,
        args.n,
        args.dims,
        args.window,
        mode=args.mode,
        device=args.device,
        target_error=args.target_error,
    )
    rows = [
        ["tiles", plan.n_tiles],
        ["grid", f"{plan.grid[0]} x {plan.grid[1]}"],
        ["tile size", f"{plan.tile_rows} x {plan.tile_cols} segments"],
        ["tile memory", f"{plan.tile_bytes / 1024**2:.1f} MiB"],
        ["limited by", plan.limited_by],
        ["predicted QT error bound", f"{plan.predicted_error_bound:.3g}"],
    ]
    print_table(["property", "value"], rows)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .validation import validate_implementations

    rng = np.random.default_rng(args.seed)
    ref = rng.normal(size=(args.n, args.dims)).cumsum(axis=0)
    qry = rng.normal(size=(args.n, args.dims)).cumsum(axis=0)
    report = validate_implementations(ref, qry, args.window)
    print(report.to_table())
    print()
    print("all implementations agree" if report.all_ok else "MISMATCH detected")
    return 0 if report.all_ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .reporting import render_autotune_choices, render_service_metrics
    from .service import JobRequest, MatrixProfileService

    rng = np.random.default_rng(args.seed)
    distinct = max(1, min(args.distinct, args.jobs))
    pool = [rng.normal(size=(args.n, args.dims)).cumsum(axis=0)
            for _ in range(distinct)]
    service = MatrixProfileService(
        device=args.device,
        n_gpus=args.gpus,
        n_workers=args.workers,
        use_cache=not args.no_cache,
    )
    if args.show_ladder:
        from .service import DOWNGRADE_LADDER

        rows = [
            [mode.value, f"{service.estimator.mode_factor(mode):.3f}"]
            for mode in DOWNGRADE_LADDER
        ]
        print_table(["mode", "cost vs FP64"], rows, title="downgrade ladder")
    jobs = [
        service.submit(
            JobRequest(
                reference=pool[i % distinct],
                m=args.window,
                mode=args.mode,
                deadline=args.deadline,
                priority=i % 3,
            )
        )
        for i in range(args.jobs)
    ]
    with service:
        pass  # workers drain the queue, then stop
    for job in jobs:
        out = job.outcome
        note = " cache" if out.cache_hit else ""
        if out.degraded:
            note += f" downgraded {out.requested_mode}->{out.effective_mode}"
        print(f"job {job.job_id}: {out.status} {out.effective_mode} "
              f"{out.latency * 1e3:.1f} ms{note}")
    snapshot = service.metrics.snapshot()
    print()
    print(render_service_metrics(snapshot))
    tuned = render_autotune_choices(snapshot)
    if tuned:
        print()
        print(tuned)
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .cluster import (
        BackpressureError,
        ClusterAutoscaler,
        ClusterSpec,
        NodeFaultPlan,
        QuotaExceededError,
        TenantQuota,
    )
    from .reporting import render_cluster_health, render_service_metrics
    from .service import JobRequest, MatrixProfileService

    rng = np.random.default_rng(args.seed)
    series = rng.normal(size=(args.n, args.dims)).cumsum(axis=0)
    node_faults = None
    if args.kill or args.crash_rate or args.straggler_rate or args.degraded_rate:
        node_faults = NodeFaultPlan(
            seed=args.storm_seed,
            crash_nodes=tuple(range(args.kill)),
            crash_rate=args.crash_rate,
            straggler_rate=args.straggler_rate,
            degraded_link_rate=args.degraded_rate,
        )
    autoscaler = None
    if args.autoscale_max is not None:
        autoscaler = ClusterAutoscaler(
            min_nodes=1, max_nodes=args.autoscale_max,
            scale_up_backlog=0.01, scale_down_backlog=0.001, cooldown=0,
        )
    service = MatrixProfileService(
        device=args.device,
        n_gpus=args.gpus_per_node,
        n_workers=1,
        cluster=ClusterSpec(
            n_nodes=args.nodes,
            gpus_per_node=args.gpus_per_node,
            device=args.device,
            placement=args.placement,
        ),
        node_faults=node_faults,
        autoscaler=autoscaler,
        default_quota=(
            TenantQuota(max_pending=args.quota_pending)
            if args.quota_pending is not None else None
        ),
        max_queue_depth=args.max_queue_depth,
    )
    jobs = []
    for i in range(args.jobs):
        tenant = f"tenant-{i % max(args.tenants, 1)}"
        try:
            jobs.append(service.submit(JobRequest(
                reference=series, m=args.window, mode=args.mode,
                tenant=tenant,
            )))
        except (QuotaExceededError, BackpressureError) as exc:
            print(f"job shed ({type(exc).__name__}): {exc}")
    service.process_all()
    for job in jobs:
        out = job.outcome
        note = " cache" if out.cache_hit else ""
        print(f"job {job.job_id} [{job.request.tenant}]: {out.status} "
              f"{out.effective_mode} {out.tiles_completed}/{out.tiles_total} "
              f"tiles{note}")
    run = service.cluster_dispatcher.last_run
    print()
    if run is not None:
        print(render_cluster_health(run))
        print()
    print(render_service_metrics(service.metrics.snapshot()))
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .reporting import render_service_metrics, render_stream_tenants
    from .streams import StreamIngestService, TenantPolicy

    rng = np.random.default_rng(args.seed)
    m = args.window
    n = args.n
    base = np.sin(np.linspace(0, n / 16, n))[:, None] * np.ones((1, args.dims))
    series = base + 0.1 * rng.standard_normal((n, args.dims))
    series[int(n * 0.75) : int(n * 0.75) + m] += 3.0  # planted discord

    service = StreamIngestService(device=args.device, n_gpus=args.gpus)
    service.register("exact", TenantPolicy(m=m, mode=args.mode))
    service.register(
        "gated", TenantPolicy(m=m, mode=args.mode, sketch_gate=True)
    )
    service.register(
        "sliding",
        TenantPolicy(m=m, mode=args.mode, window="sliding",
                     retention=max(4 * m, args.batch * 4)),
    )
    if args.deadline is not None:
        service.register(
            "shed", TenantPolicy(m=m, mode="FP64", deadline=args.deadline)
        )
    for i in range(0, n, args.batch):
        chunk = series[i : i + args.batch]
        for tenant in service.tenants():
            service.ingest(tenant, chunk)

    profile, index = service.profile("exact")
    if profile.size:
        discord = int(np.argmax(profile[:, 0]))
        print(f"exact tenant: {profile.shape[0]} segments; "
              f"top discord at segment {discord} "
              f"(planted at {int(n * 0.75)})")
    sessions = [service.tenant(t) for t in service.tenants()]
    print()
    print(render_stream_tenants(sessions))
    print()
    print(render_service_metrics(service.metrics.snapshot()))
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import JobRequest, MatrixProfileService

    data = np.loadtxt(args.csv, delimiter=",", ndmin=2)
    query = np.loadtxt(args.query, delimiter=",", ndmin=2) if args.query else None
    service = MatrixProfileService(device=args.device, n_gpus=args.gpus, n_workers=1)
    outcome = service.submit_and_wait(
        JobRequest(
            reference=data,
            query=query,
            m=args.window,
            mode=args.mode,
            deadline=args.deadline,
            priority=args.priority,
        )
    )
    result = outcome.result
    print(f"status: {outcome.status} (requested {outcome.requested_mode}, "
          f"ran {outcome.effective_mode})")
    if result is not None:
        print(f"profile: {result.profile.shape[0]} segments x {result.d} dims "
              f"({result.n_tiles} tiles)")
        print(f"service latency: {format_seconds(outcome.latency)}; "
              f"modelled device time: {format_seconds(result.modeled_time)}")
    if outcome.partial_state is not None:
        print(f"partial coverage: {outcome.completed_fraction:.0%} of tiles")
    if outcome.error:
        print(f"error: {outcome.error}")
    return 0 if outcome.status in ("completed", "partial") else 1


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .gpu.calibration import measure_host_profile, save_profile

    print(f"measuring host-execution constants on {args.device} "
          f"(n={args.n}, best of {args.repeats})...")
    profile = measure_host_profile(
        device=args.device, n_seg=args.n, repeats=args.repeats
    )
    output = args.output or f"calibration_{profile.device}.json"
    path = save_profile(profile, output)
    rows = [
        [mode, f"{profile.seconds_per_cell[mode]:.3e}",
         f"{profile.superstep_overhead[mode]:.3e}"]
        for mode in profile.seconds_per_cell
    ]
    print_table(
        ["mode", "s/cell-dim", "s/super-step"], rows,
        title="measured host rates",
    )
    print(f"tile overhead {profile.tile_overhead:.3e} s; "
          f"parallel efficiency {profile.parallel_efficiency:.2f}")
    print(f"wrote {path}")
    return 0


_COMMANDS = {
    "profile": _cmd_profile,
    "resume": _cmd_resume,
    "demo": _cmd_demo,
    "model": _cmd_model,
    "devices": _cmd_devices,
    "experiments": _cmd_experiments,
    "plan": _cmd_plan,
    "calibrate": _cmd_calibrate,
    "validate": _cmd_validate,
    "serve": _cmd_serve,
    "cluster": _cmd_cluster,
    "stream": _cmd_stream,
    "submit": _cmd_submit,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
