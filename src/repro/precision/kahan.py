"""Compensated summation (Kahan, 1965) in explicit reduced precision.

The FP16C mode of the paper performs the precalculation with "an improved
variation of arithmetic that uses Kahan's compensated summation ... to
prevent the error propagation from severe cancellations" (Section III-C).

All routines here round *every* intermediate to the requested dtype, so the
compensation genuinely operates in the target precision — summing in float64
and casting at the end would hide exactly the errors being compensated.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "kahan_sum",
    "kahan_cumsum",
    "kahan_dot",
    "neumaier_sum",
    "naive_sum",
    "naive_cumsum",
]


def naive_sum(values: np.ndarray, dtype: np.dtype, axis: int = -1) -> np.ndarray:
    """Sequential (recursive) summation with per-step rounding to ``dtype``.

    This mirrors a scalar accumulation loop on the device — *not* numpy's
    pairwise summation, whose error is O(log n · eps) rather than the
    O(n · eps) of the naive loop the paper analyses.
    """
    values = np.moveaxis(np.asarray(values, dtype=dtype), axis, -1)
    acc = np.zeros(values.shape[:-1], dtype=dtype)
    for t in range(values.shape[-1]):
        acc = (acc + values[..., t]).astype(dtype)
    return acc


def naive_cumsum(values: np.ndarray, dtype: np.dtype, axis: int = -1) -> np.ndarray:
    """Running (inclusive) sums with per-step rounding to ``dtype``."""
    values = np.moveaxis(np.asarray(values, dtype=dtype), axis, -1)
    out = np.empty_like(values)
    acc = np.zeros(values.shape[:-1], dtype=dtype)
    for t in range(values.shape[-1]):
        acc = (acc + values[..., t]).astype(dtype)
        out[..., t] = acc
    return np.moveaxis(out, -1, axis)


def kahan_sum(values: np.ndarray, dtype: np.dtype, axis: int = -1) -> np.ndarray:
    """Kahan compensated summation, vectorised over all other axes.

    The classic recurrence, with every operation rounded to ``dtype``::

        y = x[t] - c
        t = s + y
        c = (t - s) - y
        s = t
    """
    values = np.moveaxis(np.asarray(values, dtype=dtype), axis, -1)
    s = np.zeros(values.shape[:-1], dtype=dtype)
    c = np.zeros_like(s)
    for t in range(values.shape[-1]):
        y = (values[..., t] - c).astype(dtype)
        total = (s + y).astype(dtype)
        c = ((total - s).astype(dtype) - y).astype(dtype)
        s = total
    return s


def kahan_cumsum(values: np.ndarray, dtype: np.dtype, axis: int = -1) -> np.ndarray:
    """Inclusive compensated running sums (used by FP16C precalculation)."""
    values = np.moveaxis(np.asarray(values, dtype=dtype), axis, -1)
    out = np.empty_like(values)
    s = np.zeros(values.shape[:-1], dtype=dtype)
    c = np.zeros_like(s)
    for t in range(values.shape[-1]):
        y = (values[..., t] - c).astype(dtype)
        total = (s + y).astype(dtype)
        c = ((total - s).astype(dtype) - y).astype(dtype)
        s = total
        out[..., t] = s
    return np.moveaxis(out, -1, axis)


def kahan_dot(a: np.ndarray, b: np.ndarray, dtype: np.dtype, axis: int = -1) -> np.ndarray:
    """Compensated dot product ``sum(a*b)`` along ``axis`` in ``dtype``.

    Products are rounded to ``dtype`` before accumulation (matching a
    device loop of ``__hmul`` followed by compensated adds).
    """
    a = np.asarray(a, dtype=dtype)
    b = np.asarray(b, dtype=dtype)
    prod = (a * b).astype(dtype)
    return kahan_sum(prod, dtype, axis=axis)


def neumaier_sum(values: np.ndarray, dtype: np.dtype, axis: int = -1) -> np.ndarray:
    """Neumaier's improved Kahan–Babuška summation.

    Handles the case where the next addend is larger in magnitude than the
    running sum, which plain Kahan mishandles.  Included as the "improved
    arithmetic" ablation point.
    """
    values = np.moveaxis(np.asarray(values, dtype=dtype), axis, -1)
    s = np.zeros(values.shape[:-1], dtype=dtype)
    c = np.zeros_like(s)
    for t in range(values.shape[-1]):
        x = values[..., t]
        total = (s + x).astype(dtype)
        big = np.abs(s) >= np.abs(x)
        corr_big = ((s - total).astype(dtype) + x).astype(dtype)
        corr_small = ((x - total).astype(dtype) + s).astype(dtype)
        c = (c + np.where(big, corr_big, corr_small)).astype(dtype)
        s = total
    return (s + c).astype(dtype)
