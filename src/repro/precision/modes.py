"""Precision modes for matrix profile computation.

The paper (Section III-C) defines five modes:

* **FP64** -- double precision for storage and arithmetic (the reference).
* **FP32** -- single precision for storage and arithmetic.
* **FP16** -- half precision everywhere; fastest, most error-prone.
* **Mixed** -- FP16 storage/arithmetic in the main iteration loop, but the
  ``precalculation`` kernel runs in FP32.
* **FP16C** -- like Mixed, but the precalculation additionally uses Kahan's
  compensated summation to suppress cancellation, after which the main loop
  runs in FP16.

Each mode is a frozen dataclass capturing the *dtype policy*: which numpy
dtype is used for storage of the large planes, which dtype the main-loop
arithmetic rounds to, which dtype the precalculation uses, and whether the
precalculation applies compensated summation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = [
    "PrecisionMode",
    "PrecisionPolicy",
    "POLICIES",
    "policy_for",
    "MACHINE_EPS",
    "DTYPE_MAX",
    "TENSOR_CORE_MODES",
]

#: Unit roundoff (machine epsilon for round-to-nearest) per IEEE format,
#: as used in the paper's error analysis (Section V-B):
#: eps64 = 2^-52, eps32 = 2^-23, eps16 = 2^-10  (the paper quotes the
#: round-to-nearest *precision* of the significand).
MACHINE_EPS: dict[np.dtype, float] = {
    np.dtype(np.float64): 2.0**-52,
    np.dtype(np.float32): 2.0**-23,
    np.dtype(np.float16): 2.0**-10,
}

#: Largest finite representable magnitude per format (overflow threshold,
#: relevant for the paper's discussion of large-deviation regions in FP16).
DTYPE_MAX: dict[np.dtype, float] = {
    np.dtype(np.float64): float(np.finfo(np.float64).max),
    np.dtype(np.float32): float(np.finfo(np.float32).max),
    np.dtype(np.float16): float(np.finfo(np.float16).max),  # 65504.0
}


class PrecisionMode(str, enum.Enum):
    """The five precision modes of the paper (Fig. 1, bottom table)."""

    FP64 = "FP64"
    FP32 = "FP32"
    FP16 = "FP16"
    MIXED = "Mixed"
    FP16C = "FP16C"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @classmethod
    def parse(cls, value: "PrecisionMode | str") -> "PrecisionMode":
        """Parse a mode from a string, case-insensitively.

        Accepts the paper's spellings (``"Mixed"``, ``"FP16C"``) as well as
        lower-case variants.
        """
        if isinstance(value, cls):
            return value
        lookup = {m.value.lower(): m for m in cls}
        try:
            return lookup[str(value).lower()]
        except KeyError:
            valid = ", ".join(m.value for m in cls)
            raise ValueError(
                f"unknown precision mode {value!r}; expected one of: {valid}"
            ) from None


@dataclass(frozen=True)
class PrecisionPolicy:
    """Dtype policy realising one :class:`PrecisionMode`.

    Attributes
    ----------
    mode:
        The mode this policy realises.
    storage:
        Dtype used for the large device-resident planes (``QT``, ``D``,
        ``P`` and the precalculated vectors handed to the main loop).
    compute:
        Dtype the main-loop arithmetic rounds to after every operation.
        On real hardware this is the register format of the FMA pipeline.
    precalc:
        Dtype used *inside* the ``precalculation`` kernel.  For Mixed and
        FP16C this is wider than ``storage``; results are rounded down to
        ``storage`` when handed to the main loop.
    compensated:
        Whether precalculation uses Kahan compensated summation (FP16C).
    """

    mode: PrecisionMode
    storage: np.dtype
    compute: np.dtype
    precalc: np.dtype
    compensated: bool

    @property
    def eps(self) -> float:
        """Unit roundoff of the main-loop compute format."""
        return MACHINE_EPS[self.compute]

    @property
    def precalc_eps(self) -> float:
        """Unit roundoff of the precalculation format."""
        return MACHINE_EPS[self.precalc]

    @property
    def max_value(self) -> float:
        """Overflow threshold of the main-loop compute format."""
        return DTYPE_MAX[self.compute]

    @property
    def itemsize(self) -> int:
        """Bytes per element in device storage (drives the perf model)."""
        return self.storage.itemsize

    def __post_init__(self) -> None:
        for field in ("storage", "compute", "precalc"):
            value = getattr(self, field)
            if np.dtype(value) not in MACHINE_EPS:
                raise TypeError(f"{field} must be a float16/32/64 dtype, got {value}")


def _policy(
    mode: PrecisionMode,
    storage: type,
    compute: type,
    precalc: type,
    compensated: bool = False,
) -> PrecisionPolicy:
    return PrecisionPolicy(
        mode=mode,
        storage=np.dtype(storage),
        compute=np.dtype(compute),
        precalc=np.dtype(precalc),
        compensated=compensated,
    )


#: The mode -> policy table from Fig. 1 of the paper:
#: precalculation dtype / main-loop dtype (+ compensator for FP16C).
POLICIES: dict[PrecisionMode, PrecisionPolicy] = {
    PrecisionMode.FP64: _policy(PrecisionMode.FP64, np.float64, np.float64, np.float64),
    PrecisionMode.FP32: _policy(PrecisionMode.FP32, np.float32, np.float32, np.float32),
    PrecisionMode.FP16: _policy(PrecisionMode.FP16, np.float16, np.float16, np.float16),
    PrecisionMode.MIXED: _policy(PrecisionMode.MIXED, np.float16, np.float16, np.float32),
    PrecisionMode.FP16C: _policy(
        PrecisionMode.FP16C, np.float16, np.float16, np.float32, compensated=True
    ),
}


def policy_for(mode: "PrecisionMode | str") -> PrecisionPolicy:
    """Return the :class:`PrecisionPolicy` for ``mode`` (string accepted)."""
    return POLICIES[PrecisionMode.parse(mode)]


#: Modes eligible for the tensor-core main loop.  WMMA fragments take
#: FP16 operands and accumulate in FP32 — that matches the FP16-storage,
#: wide-precalc modes exactly.  Pure FP16 is excluded (its all-half
#: accumulation chain contradicts the FP32 accumulator the hardware
#: provides), as are FP32/FP64 (operands would have to be truncated).
TENSOR_CORE_MODES: tuple[PrecisionMode, ...] = (
    PrecisionMode.MIXED,
    PrecisionMode.FP16C,
)
