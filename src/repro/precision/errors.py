"""Rounding-error analysis for the streaming matrix profile recurrence.

Section V-B of the paper traces the numerical inaccuracies of reduced
precision to two factors, following the dot-product analysis of Yang,
Fox & Sanders (SIAM J. Sci. Comput. 2021):

* **machine error** — the iterative computation of QT behaves like a long
  dot product, whose forward error bound grows as ``e ∝ n · eps``;
* **tile size** — restarting the precalculation per tile resets the
  recurrence, so the effective ``n`` in the bound is the tile edge length.

This module provides those bounds plus the condition-number diagnostic for
Eq. (1): near-flat segments (tiny norms) make the correlation-to-distance
conversion ill-conditioned, and large-deviation segments overflow FP16.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .modes import DTYPE_MAX, MACHINE_EPS, PrecisionMode, policy_for

__all__ = [
    "dot_product_error_bound",
    "streaming_qt_error_bound",
    "tc_gemm_error_bound",
    "tile_edge_for_target_error",
    "correlation_condition_number",
    "implied_correlation",
    "max_plausible_distance",
    "overflow_risk_fraction",
    "flat_region_fraction",
    "ErrorBudget",
    "estimate_error_budget",
]


def dot_product_error_bound(n: int, eps: float) -> float:
    """First-order forward error bound ``gamma_n = n*eps / (1 - n*eps)``.

    The classical bound for a length-``n`` recursive dot product (Higham,
    *Accuracy and Stability of Numerical Algorithms*, Lemma 3.1), which the
    paper summarises as ``e ∝ n · eps``.  Returns ``inf`` once ``n*eps >= 1``
    (the regime where FP16 results become meaningless).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    ne = n * eps
    if ne >= 1.0:
        return math.inf
    return ne / (1.0 - ne)


def streaming_qt_error_bound(
    rows: int, m: int, mode: PrecisionMode | str
) -> float:
    """Relative error bound for QT after ``rows`` streaming updates.

    The diagonal recurrence performs two FMAs per step on top of an initial
    length-``m`` dot product, so the accumulated rounding behaves like a dot
    product of length ``m + 2*rows`` evaluated in the main-loop precision
    (the precalculation contributes ``m`` terms in the *precalc* precision,
    which is what Mixed/FP16C improve).
    """
    policy = policy_for(mode)
    precalc_part = dot_product_error_bound(m, policy.precalc_eps)
    if policy.compensated:
        # Kahan reduces the precalc contribution to O(eps) independent of m.
        precalc_part = 2.0 * policy.precalc_eps
    stream_part = dot_product_error_bound(2 * rows, policy.eps)
    return precalc_part + stream_part


def tc_gemm_error_bound(
    rows: int, m: int, mode: PrecisionMode | str, row_block: int = 32
) -> float:
    """Relative error bound for QT on the tensor-core main loop.

    The packed-panel kernel evaluates the same recurrence as
    :func:`streaming_qt_error_bound` but with WMMA semantics: the rank-2
    update terms are quantised to FP16 *once* (operand rounding), then the
    within-block prefix accumulation runs as chained MMAs with an **FP32
    accumulator**, and only the block-boundary QT row is stored back to
    FP16.  That changes the error structure versus both half-family
    Section V-B bounds:

    * operand quantisation perturbs each of the ``2*rows`` update terms by
      at most ``eps16`` relative to the term's magnitude — summed exactly
      thereafter, this contributes a *constant* ``2*eps16`` (plus one
      ``eps16`` per block-boundary FP16 store and one for the final store),
      not the ``gamma_{2 rows}(eps16)`` growth of the vector FP16 loop;
    * the accumulation chain itself rounds in FP32, contributing
      ``gamma_{2 rows}(eps32)`` — growth with tile edge survives, but at
      the FP32 rate, ~8000x smaller per step than FP16.

    The precalculation contribution is unchanged from the mode's policy
    (FP32 seed dot products; Kahan-compensated for FP16C).  Only the
    FP16-storage wide-precalc modes (``TENSOR_CORE_MODES``) are valid —
    the bound is meaningless for policies the tensor-core path refuses.
    """
    from .modes import TENSOR_CORE_MODES

    policy = policy_for(mode)
    if policy.mode not in TENSOR_CORE_MODES:
        eligible = ", ".join(m_.value for m_ in TENSOR_CORE_MODES)
        raise ValueError(
            f"tc_gemm_error_bound applies to the tensor-core modes"
            f" ({eligible}), not {policy.mode.value}"
        )
    if rows < 0:
        raise ValueError(f"rows must be non-negative, got {rows}")
    if row_block < 1:
        raise ValueError(f"row_block must be >= 1, got {row_block}")
    eps16 = MACHINE_EPS[np.dtype(np.float16)]
    eps32 = MACHINE_EPS[np.dtype(np.float32)]
    precalc_part = dot_product_error_bound(m, policy.precalc_eps)
    if policy.compensated:
        precalc_part = 2.0 * policy.precalc_eps
    n_blocks = math.ceil(rows / row_block) if rows else 0
    operand_part = (2.0 + n_blocks + 1.0) * eps16
    accum_part = dot_product_error_bound(2 * rows, eps32)
    return precalc_part + operand_part + accum_part


def tile_edge_for_target_error(
    target: float, m: int, mode: PrecisionMode | str
) -> int:
    """Largest tile edge length whose QT error bound stays below ``target``.

    Inverts :func:`streaming_qt_error_bound`; the multi-tile algorithm uses
    this to pick ``ntiles`` for a requested accuracy (Section III-B: "this
    design simplifies tuning for accuracy through careful selection of the
    number of tiles").
    """
    if target <= 0:
        raise ValueError("target error must be positive")
    if streaming_qt_error_bound(1, m, mode) >= target:
        return 1
    lo, hi = 1, 1 << 40
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if streaming_qt_error_bound(mid, m, mode) < target:
            lo = mid
        else:
            hi = mid - 1
    return lo


def correlation_condition_number(corr: np.ndarray) -> np.ndarray:
    """Condition number of ``D = sqrt(2m(1-corr))`` w.r.t. ``corr``.

    ``kappa = |corr| / (2*(1-corr))`` — it diverges as ``corr -> 1``: the
    best matches (the entries the matrix profile cares about!) are exactly
    where the formulation is most ill-conditioned, explaining why small QT
    errors flip nearest-neighbour indices.
    """
    corr = np.asarray(corr, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.abs(corr) / (2.0 * np.abs(1.0 - corr))


def implied_correlation(distance: "np.ndarray | float", m: int) -> np.ndarray:
    """The Pearson correlation a z-normalised distance implies (Eq. 1 inverted).

    ``D = sqrt(2m(1 - corr))`` gives ``corr = 1 - D^2 / (2m)``.  A genuine
    distance always implies ``corr`` in ``[-1, 1]``; rounding error pushes it
    slightly outside, and corruption pushes it far outside — which is what
    the per-tile health checks test for.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    d = np.asarray(distance, dtype=np.float64)
    return 1.0 - (d * d) / (2.0 * m)


def max_plausible_distance(m: int, tol: float = 0.0) -> float:
    """Largest distance a genuine correlation ``>= -1 - tol`` can produce.

    ``sqrt(2m(2 + tol))`` — any profile entry above it implies a correlation
    below ``-1 - tol`` and therefore cannot come from Eq. (1) applied to
    real data; it is rounding blow-up or corruption.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if tol < 0:
        raise ValueError(f"tol must be >= 0, got {tol}")
    return math.sqrt(2.0 * m * (2.0 + tol))


def overflow_risk_fraction(series: np.ndarray, m: int, dtype: np.dtype) -> float:
    """Fraction of segments whose raw dot product would overflow ``dtype``.

    The un-normalised sliding dot products are bounded by ``m * max|x|^2``;
    segments exceeding the format's finite range saturate (Section V-B:
    "regions with large deviations are prone to overflow").  Min-max
    normalising the input (as the turbine case study does) sends this to 0.
    """
    series = np.asarray(series, dtype=np.float64)
    limit = DTYPE_MAX[np.dtype(dtype)]
    flat = series.reshape(series.shape[0], -1)
    n_seg = flat.shape[0] - m + 1
    if n_seg <= 0:
        raise ValueError(f"series too short for m={m}")
    sq = flat * flat
    window_energy = np.lib.stride_tricks.sliding_window_view(sq, m, axis=0).sum(axis=-1)
    return float(np.mean(window_energy > limit))


def flat_region_fraction(series: np.ndarray, m: int, rel_tol: float = 1e-3) -> float:
    """Fraction of segments that are numerically flat (tiny z-norm scale).

    Flat segments have near-zero centred norms; dividing by them in Eq. (1)
    is the ill-conditioned case the paper flags.  A segment is "flat" when
    its standard deviation is below ``rel_tol`` times the series' overall
    standard deviation.
    """
    series = np.asarray(series, dtype=np.float64)
    flat = series.reshape(series.shape[0], -1)
    windows = np.lib.stride_tricks.sliding_window_view(flat, m, axis=0)
    stds = windows.std(axis=-1)
    global_std = flat.std(axis=0, keepdims=True)
    global_std = np.where(global_std == 0, 1.0, global_std)
    return float(np.mean(stds < rel_tol * global_std))


@dataclass(frozen=True)
class ErrorBudget:
    """Diagnostic summary of expected reduced-precision behaviour."""

    mode: PrecisionMode
    tile_rows: int
    m: int
    qt_error_bound: float
    overflow_fraction: float
    flat_fraction: float

    @property
    def usable(self) -> bool:
        """Heuristic: results are expected to be meaningful (bound < 50%)."""
        return self.qt_error_bound < 0.5 and self.overflow_fraction == 0.0


def estimate_error_budget(
    series: np.ndarray,
    m: int,
    mode: PrecisionMode | str,
    tile_rows: int | None = None,
) -> ErrorBudget:
    """Build an :class:`ErrorBudget` for running ``mode`` on ``series``.

    ``tile_rows`` defaults to the full (untiled) row count.
    """
    series = np.asarray(series, dtype=np.float64)
    policy = policy_for(mode)
    n_seg = series.shape[0] - m + 1
    if n_seg <= 0:
        raise ValueError(f"series of length {series.shape[0]} too short for m={m}")
    rows = n_seg if tile_rows is None else tile_rows
    return ErrorBudget(
        mode=policy.mode,
        tile_rows=rows,
        m=m,
        qt_error_bound=streaming_qt_error_bound(rows, m, policy.mode),
        overflow_fraction=overflow_risk_fraction(series, m, policy.compute),
        flat_fraction=flat_region_fraction(series, m),
    )
