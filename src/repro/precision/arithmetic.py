"""Reduced-precision arithmetic helpers.

On NVIDIA GPUs the ``__half`` intrinsics round every floating-point
operation to binary16.  numpy's ``float16`` arithmetic has the same
semantics (each ufunc computes in a wider format internally and rounds the
result to binary16), so computing on ``float16`` arrays is a faithful
per-operation emulation of the paper's FP16 kernels.  The helpers here make
the rounding points explicit and add the saturation behaviour of CUDA's
half-precision conversions.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .modes import DTYPE_MAX

__all__ = [
    "quantize",
    "saturate_cast",
    "rp_add",
    "rp_sub",
    "rp_mul",
    "rp_div",
    "rp_fma",
    "rp_sqrt",
    "ulp_distance",
]

ArrayLike = Union[np.ndarray, float, int]


def quantize(x: ArrayLike, dtype: np.dtype) -> np.ndarray:
    """Round ``x`` to ``dtype`` (round-to-nearest-even, may overflow to inf).

    This is the "storage" rounding: exactly what happens when a register
    value is written to a lower-precision array element.  Overflow becomes
    inf silently (hardware conversion semantics).
    """
    with np.errstate(over="ignore"):
        return np.asarray(x).astype(dtype, copy=False)


def saturate_cast(x: ArrayLike, dtype: np.dtype) -> np.ndarray:
    """Round ``x`` to ``dtype``, clamping overflow to the largest finite value.

    CUDA's ``__float2half_rn`` family saturates rather than producing inf
    for values within float range; the paper's turbine case study relies on
    min-max normalisation precisely to stay below this threshold.  NaNs are
    propagated unchanged.
    """
    dtype = np.dtype(dtype)
    limit = DTYPE_MAX[dtype]
    arr = np.asarray(x, dtype=np.float64)
    clipped = np.clip(arr, -limit, limit)
    # np.clip propagates NaN already; just cast.
    return clipped.astype(dtype)


def rp_add(a: ArrayLike, b: ArrayLike, dtype: np.dtype) -> np.ndarray:
    """``a + b`` rounded to ``dtype``."""
    with np.errstate(over="ignore", invalid="ignore"):
        return (quantize(a, dtype) + quantize(b, dtype)).astype(dtype, copy=False)


def rp_sub(a: ArrayLike, b: ArrayLike, dtype: np.dtype) -> np.ndarray:
    """``a - b`` rounded to ``dtype``."""
    with np.errstate(over="ignore", invalid="ignore"):
        return (quantize(a, dtype) - quantize(b, dtype)).astype(dtype, copy=False)


def rp_mul(a: ArrayLike, b: ArrayLike, dtype: np.dtype) -> np.ndarray:
    """``a * b`` rounded to ``dtype``."""
    with np.errstate(over="ignore", invalid="ignore"):
        return (quantize(a, dtype) * quantize(b, dtype)).astype(dtype, copy=False)


def rp_div(a: ArrayLike, b: ArrayLike, dtype: np.dtype) -> np.ndarray:
    """``a / b`` rounded to ``dtype``."""
    with np.errstate(divide="ignore", invalid="ignore"):
        return (quantize(a, dtype) / quantize(b, dtype)).astype(dtype, copy=False)


def rp_fma(a: ArrayLike, b: ArrayLike, c: ArrayLike, dtype: np.dtype) -> np.ndarray:
    """Fused multiply-add ``a*b + c`` with a *single* rounding to ``dtype``.

    GPU pipelines provide fused FMA (``__hfma`` for half) which rounds once.
    We emulate the fused behaviour by evaluating in the next-wider format —
    the product of two ``dtype`` values is exact there (11-bit significands
    square into 22 < 24 bits for half, 24 into 48 < 53 for single) — and
    rounding the final result once.  For float64 numpy has no fma; the
    two-rounding fallback differs from hardware by at most one ulp.
    """
    dtype = np.dtype(dtype)
    with np.errstate(over="ignore", invalid="ignore"):
        if dtype == np.float64:
            a_q, b_q, c_q = quantize(a, dtype), quantize(b, dtype), quantize(c, dtype)
            return np.asarray(a_q * b_q + c_q, dtype=dtype)
        wide = np.float32 if dtype == np.float16 else np.float64
        a_w = np.asarray(quantize(a, dtype), dtype=wide)
        b_w = np.asarray(quantize(b, dtype), dtype=wide)
        c_w = np.asarray(quantize(c, dtype), dtype=wide)
        return (a_w * b_w + c_w).astype(dtype)


def rp_sqrt(a: ArrayLike, dtype: np.dtype) -> np.ndarray:
    """``sqrt(a)`` rounded to ``dtype`` (NaN for negative inputs)."""
    with np.errstate(invalid="ignore"):
        return np.sqrt(quantize(a, dtype)).astype(dtype, copy=False)


def ulp_distance(a: ArrayLike, b: ArrayLike, dtype: np.dtype) -> np.ndarray:
    """Distance between ``a`` and ``b`` in units-in-the-last-place of ``dtype``.

    Useful for tests asserting "bit-identical up to k ulps" across code
    paths that should agree (e.g. streaming vs. naive dot products in FP64).
    """
    dtype = np.dtype(dtype)
    a_q = quantize(a, dtype)
    b_q = quantize(b, dtype)
    spacing = np.spacing(np.maximum(np.abs(a_q), np.abs(b_q)).astype(dtype))
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.abs(a_q.astype(np.float64) - b_q.astype(np.float64)) / spacing.astype(
            np.float64
        )
    return np.where(a_q == b_q, 0.0, out)
