#!/usr/bin/env python
"""The matrix-profile job service: caching, load shedding, fault recovery.

Drives the `repro.service` subsystem through its three headline
behaviours:

1. **Result caching** — repeated queries over the same series are served
   from the content-addressed cache.
2. **Precision-aware load shedding** — a burst of deadline-carrying jobs
   overwhelms the estimated capacity, and the admission controller walks
   jobs down the FP64 -> FP32 -> Mixed -> FP16 ladder instead of
   dropping any of them.
3. **Fault recovery** — an injected transient device failure is retried
   on a different pool GPU without corrupting the result.

Run:  python examples/service_demo.py
"""

import numpy as np

from repro.reporting import banner, print_table, render_service_metrics
from repro.service import (
    DOWNGRADE_LADDER,
    JobRequest,
    LoadEstimator,
    MatrixProfileService,
    TransientDeviceError,
)


def main() -> None:
    rng = np.random.default_rng(7)
    series = rng.normal(size=(512, 3)).cumsum(axis=0)
    m = 32

    banner("1. Result caching on repeated queries")
    service = MatrixProfileService(device="A100", n_gpus=2, n_workers=2)
    for round_no in (1, 2, 3):
        outcome = service.submit_and_wait(JobRequest(reference=series, m=m))
        source = "cache" if outcome.cache_hit else "computed"
        print(f"round {round_no}: {outcome.status} ({source}, "
              f"{outcome.latency * 1e3:.1f} ms)")
    print(f"cache stats: {service.cache.stats()}")

    banner("2. Overload burst: precision downgrades, zero drops")
    # A deliberately pessimistic, non-learning estimator makes the
    # backlog arithmetic deterministic: estimates blow the deadline
    # budget long before the real (fast) compute would.
    estimator = LoadEstimator("A100", seconds_per_cell=1e-4, learn=False)
    burst = MatrixProfileService(
        device="A100", n_gpus=2, n_workers=1, estimator=estimator,
        use_cache=False,
    )
    ladder = " -> ".join(mode.value for mode in DOWNGRADE_LADDER)
    print(f"downgrade ladder: {ladder}")
    jobs = [
        burst.submit(JobRequest(reference=series, m=m, deadline=10.0))
        for _ in range(8)
    ]
    burst.process_all()
    rows = [
        [job.job_id, str(job.outcome.status), job.outcome.requested_mode.value,
         job.outcome.effective_mode.value, job.outcome.downgrade_steps]
        for job in jobs
    ]
    print_table(["job", "status", "requested", "ran", "steps shed"], rows)
    print(render_service_metrics(burst.metrics.snapshot()))

    banner("3. Transient device failure: retry on another GPU")

    def flaky_gpu0(label, tile, gpu_id, attempt):
        if gpu_id == 0 and attempt == 0:
            raise TransientDeviceError(f"injected fault on GPU {gpu_id}")

    resilient = MatrixProfileService(
        device="A100", n_gpus=2, n_workers=1, failure_injector=flaky_gpu0,
    )
    outcome = resilient.submit_and_wait(
        JobRequest(reference=series, m=m, n_tiles=4)
    )
    print(f"status: {outcome.status}; tile retries absorbed: "
          f"{outcome.tile_retries}")
    baseline = service.submit_and_wait(JobRequest(reference=series, m=m))
    match = np.allclose(
        outcome.result.profile, baseline.result.profile, atol=1e-10
    )
    print(f"profile identical to failure-free run: {match}")


if __name__ == "__main__":
    main()
