#!/usr/bin/env python
"""Case study VI-B: mining DNA sequences with the matrix profile.

Reproduces the Genome-in-a-Bottle experiment on synthetic chromosomes:
sequences are encoded A->1, C->2, T->3, G->4 (the paper's transformation
relation), conserved genes are planted in both genomes, and the matrix
profile locates them.  The reduced-precision angle: the tiny {1..4}
alphabet keeps every value exactly representable in FP16, and the tiling
scheme recovers the recall that long FP16 streaming recurrences lose
(Fig. 10).

Run:  python examples/genome_mining.py
"""

import numpy as np

from repro import matrix_profile
from repro.datasets import make_genome_dataset
from repro.metrics import detection_hits, recall_rate
from repro.reporting import banner, format_seconds, print_table


def main() -> None:
    n, d, m = 3072, 8, 128
    banner("Generating synthetic genomes")
    ds = make_genome_dataset(n=n, d=d, m=m, genes_per_chromosome=2,
                             mutation_rate=0.01, seed=5)
    print(f"chromosomes: {d}, bases per chromosome: {n}, gene length: {m}")
    print(f"planted genes: {len(ds.genes)} "
          f"(avg {np.mean([g.mutations for g in ds.genes]):.1f} mutations each)")

    banner("Reference run (FP64)")
    ref = matrix_profile(ds.reference, ds.query, m=m, mode="FP64")
    hits = detection_hits(
        ref.index,
        [g.query_pos for g in ds.genes],
        [g.ref_pos for g in ds.genes],
        m,
        k=1,
    )
    print(f"genes recovered by the 1-d profile index: {sum(hits)}/{len(hits)}")

    banner("Fig. 10: recall and modelled time vs number of tiles")
    rows = []
    for n_tiles in (1, 4, 16, 64, 256):
        rows_for_modes = [n_tiles]
        for mode in ("FP16", "Mixed", "FP16C"):
            r = matrix_profile(ds.reference, ds.query, m=m, mode=mode,
                               n_tiles=n_tiles)
            rows_for_modes.append(f"{recall_rate(r.index, ref.index):.1f}%")
        r64 = matrix_profile(ds.reference, ds.query, m=m, mode="FP64",
                             n_tiles=n_tiles)
        rows_for_modes.append(format_seconds(r64.modeled_time))
        rows.append(rows_for_modes)
    print_table(
        ["tiles", "R FP16", "R Mixed", "R FP16C", "modelled time (FP64)"],
        rows,
    )
    print("Expected trend (paper): FP16 recall climbs with the tile count; "
          "Mixed/FP16C stay high for any tiling.")


if __name__ == "__main__":
    main()
