#!/usr/bin/env python
"""Quickstart: multi-dimensional matrix profile in five precision modes.

Builds a small synthetic multi-dimensional time series with one planted
motif, computes the matrix profile on the simulated A100 in every
precision mode, and shows (a) that the motif is found, (b) how numerical
accuracy degrades with precision, and (c) the modelled GPU runtime.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import matrix_profile
from repro.metrics import recall_rate, relative_accuracy
from repro.reporting import banner, format_seconds, print_table


def main() -> None:
    rng = np.random.default_rng(7)
    n, d, m = 2048, 8, 64

    # Two noise series sharing one sine-burst motif in dimension 3.
    reference = rng.normal(size=(n, d))
    query = rng.normal(size=(n, d))
    wave = 5.0 * np.sin(np.linspace(0, 4 * np.pi, m))
    ref_pos, query_pos = 400, 1500
    reference[ref_pos : ref_pos + m, 3] += wave
    query[query_pos : query_pos + m, 3] += wave

    banner("Reference run (FP64)")
    result = matrix_profile(reference, query, m=m, mode="FP64", device="A100")
    print(f"profile shape: {result.profile.shape}  (n_q_seg x d)")
    j, i = result.motif_location(k=1)
    print(f"best 1-dimensional motif: query segment {j} <-> reference segment {i}")
    print(f"expected:                 query segment {query_pos} <-> reference "
          f"segment {ref_pos}")
    print(f"modelled A100 time: {format_seconds(result.modeled_time)}")

    banner("Precision sweep")
    rows = []
    for mode in ("FP64", "FP32", "FP16", "Mixed", "FP16C"):
        r = matrix_profile(reference, query, m=m, mode=mode, device="A100")
        j, i = r.motif_location(k=1)
        # A shifted-but-aligned hit is a valid discovery: both windows
        # overlap the planted burst with the same offset.
        found = abs((i - ref_pos) - (j - query_pos)) <= 1 and abs(j - query_pos) < m
        rows.append(
            [
                mode,
                f"{relative_accuracy(r.profile, result.profile):.1f}%",
                f"{recall_rate(r.index, result.index):.1f}%",
                "yes" if found else "no",
                format_seconds(r.modeled_time),
            ]
        )
    print_table(
        ["mode", "rel. accuracy A", "recall R", "motif found", "modelled time"],
        rows,
    )

    banner("Tiling bounds the FP16 error (Fig. 7 effect)")
    rows = []
    for n_tiles in (1, 4, 16, 64):
        r = matrix_profile(
            reference, query, m=m, mode="FP16", device="A100", n_tiles=n_tiles
        )
        rows.append(
            [
                n_tiles,
                f"{relative_accuracy(r.profile, result.profile):.1f}%",
                f"{recall_rate(r.index, result.index):.1f}%",
                format_seconds(r.modeled_time),
            ]
        )
    print_table(["tiles", "rel. accuracy A", "recall R", "modelled time"], rows)


if __name__ == "__main__":
    main()
