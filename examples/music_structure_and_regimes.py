#!/usr/bin/env python
"""Song-structure discovery, regime segmentation and drift chains.

Three companion analyses on top of the matrix profile, demonstrated on
the MIR domain the paper's introduction cites plus a regime-switching
machine signal:

1. **Chorus detection** (SiMPle-style): the self-join matrix profile of a
   song's 12-d chroma features pairs up its chorus occurrences.
2. **FLUSS segmentation**: the corrected arc curve finds where a signal's
   *behaviour* changes without any labels.
3. **Time-series chains**: a slowly drifting pattern links into a chain
   through the left/right profiles.

Run:  python examples/music_structure_and_regimes.py
"""

import numpy as np

from repro import matrix_profile
from repro.apps import (
    left_right_profile,
    segment_regimes,
    unanchored_chain,
)
from repro.datasets import make_chroma_song
from repro.reporting import banner, print_table


def chorus_detection() -> None:
    banner("1. Chorus detection on chroma features (12 pitch classes)")
    song = make_chroma_song(seed=5)
    kinds = [s.kind for s in song.sections]
    print("structure:", " → ".join(kinds))

    m = song.frames_per_bar * 2
    result = matrix_profile(song.chroma, m=m, mode="FP32")
    choruses = song.occurrences("chorus")
    rows = []
    for idx, section in enumerate(choruses):
        probe = section.start + 4
        match = int(result.index[probe, 5])
        partner = min(
            (c for c in choruses if c is not section),
            key=lambda c: abs(c.start + 4 - match),
        )
        hit = abs(match - (partner.start + 4)) <= song.frames_per_bar
        rows.append([f"chorus #{idx + 1}", probe, match,
                     "another chorus ✓" if hit else "✗"])
    print_table(["section", "probe frame", "best match", "matched"], rows)


def regime_segmentation() -> None:
    banner("2. FLUSS regime segmentation (unsupervised change detection)")
    rng = np.random.default_rng(3)
    t = np.arange(900)
    regimes = [
        np.sin(2 * np.pi * t[:300] / 12),          # fast oscillation
        ((t[300:600] % 50) / 50.0) * 2 - 1,        # sawtooth ramps
        np.sin(2 * np.pi * t[600:] / 33) ** 3,     # clipped slow wave
    ]
    signal = np.concatenate(regimes) + 0.05 * rng.normal(size=900)
    result = matrix_profile(signal, m=30, mode="FP64")
    seg = segment_regimes(result, n_regimes=3)
    print(f"true regime changes at 300 and 600; detected: {seg.boundaries}")
    rows = [[pos, seg.regime_of(pos)] for pos in (100, 450, 800)]
    print_table(["position", "assigned regime"], rows)


def drift_chain() -> None:
    banner("3. Time-series chain through a drifting pattern")
    rng = np.random.default_rng(8)
    m, n_occ = 32, 7
    x = 0.1 * rng.normal(size=(n_occ * 3 * m, 1))
    truth = []
    for t in range(n_occ):
        pos = t * 3 * m + m
        freq = 2.0 + 0.15 * t  # the drift
        x[pos : pos + m, 0] += np.sin(2 * np.pi * freq * np.arange(m) / m)
        truth.append(pos)
    lr = left_right_profile(x, m)
    chain = unanchored_chain(lr)
    print(f"planted occurrences: {truth}")
    print(f"recovered chain:     {chain}")
    covered = sum(1 for link in chain if min(abs(link - p) for p in truth) < m)
    print(f"{covered}/{len(chain)} chain links sit on planted occurrences")


def main() -> None:
    chorus_detection()
    regime_segmentation()
    drift_chain()


if __name__ == "__main__":
    main()
