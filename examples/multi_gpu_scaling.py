#!/usr/bin/env python
"""Multi-GPU scaling on the simulated DGX-1 and Raven nodes.

Demonstrates the multi-tile algorithm (Pseudocode 2) across simulated
GPUs: tiles are assigned round-robin, executed on CUDA-style streams, and
merged on the host.  Reproduces the qualitative scaling behaviour of
Fig. 5 — near-linear speedup, dips at odd GPU counts, ~constant accuracy
— at paper scale via the analytic performance model plus a reduced-scale
numerical run proving result invariance.

Run:  python examples/multi_gpu_scaling.py
"""

import numpy as np

from repro import RunConfig, matrix_profile, model_multi_tile
from repro.reporting import banner, format_seconds, print_table


def main() -> None:
    banner("Paper-scale projection: DGX-1 (8x V100), 16 tiles, n=2^16, d=2^8")
    n, d, m = 2**16, 2**8, 2**6
    base = None
    rows = []
    for n_gpus in range(1, 9):
        r = model_multi_tile(n, d, m, RunConfig(device="V100", n_tiles=16, n_gpus=n_gpus))
        if base is None:
            base = r.modeled_time
        eff = base / (n_gpus * r.modeled_time)
        rows.append([n_gpus, format_seconds(r.modeled_time), f"{eff:.2%}"])
    print_table(["GPUs", "modelled time", "parallel efficiency"], rows)
    print("Note the efficiency dips at 3/5/7 GPUs: 16 tiles do not divide "
          "evenly (the paper observes the same).")

    banner("Raven node (4x A100), all precision modes")
    from repro.precision import policy_for

    rows = []
    for mode in ("FP64", "FP32", "FP16", "Mixed", "FP16C"):
        row = [mode]
        policy = policy_for(mode)
        for n_gpus in (1, 2, 4):
            cfg = RunConfig(mode=mode, device="A100", n_tiles=16, n_gpus=n_gpus)
            r = model_multi_tile(n, d, m, cfg)
            row.append(format_seconds(r.modeled_time))
        rows.append(row)
    print_table(["mode", "1 GPU", "2 GPUs", "4 GPUs"], rows)

    banner("Reduced-scale numerical check: results are GPU-count invariant")
    rng = np.random.default_rng(0)
    ref = rng.normal(size=(1024, 8))
    qry = rng.normal(size=(1024, 8))
    baseline = matrix_profile(ref, qry, m=64, n_tiles=16, n_gpus=1)
    for n_gpus in (2, 4, 8):
        r = matrix_profile(ref, qry, m=64, n_tiles=16, n_gpus=n_gpus)
        same = np.array_equal(r.index, baseline.index)
        print(f"{n_gpus} GPUs: index identical to 1-GPU run: {same}, "
              f"modelled time {format_seconds(r.modeled_time)}")


if __name__ == "__main__":
    main()
