#!/usr/bin/env python
"""Tensor-core execution path: faster *and* tighter than the vector loop.

Computes the same Mixed-precision self-join three ways on the simulated
A100 — the paper's vector recurrence, the tensor-core packed-panel
chained-GEMM path, and an FP64 oracle — then shows (a) both reduced-
precision runs find the planted motif, (b) the tensor-core profile sits
*closer* to the oracle (FP32 accumulation beats the FP16 running QT row),
(c) the measured error respects the a-priori ``tc_gemm_error_bound``,
and (d) how ineligible requests (FP64 mode, a device without tensor
cores) fall back to the vector path with the reason recorded on the
result.

Run:  python examples/tensor_core_demo.py
"""

import numpy as np

from repro import matrix_profile
from repro.core.config import RunConfig
from repro.precision.errors import tc_gemm_error_bound
from repro.reporting import banner, print_table


def main() -> None:
    rng = np.random.default_rng(21)
    n, d, m = 1024, 8, 64
    n_seg = n - m + 1

    t = np.arange(n)[:, None]
    series = np.sin(2 * np.pi * t / (7.0 + np.arange(d)[None, :]))
    series += 0.35 * rng.standard_normal((n, d))
    wave = 2.0 * np.sin(np.linspace(0, 4 * np.pi, m))
    a_pos, b_pos = 150, 700
    series[a_pos : a_pos + m, 2] += wave
    series[b_pos : b_pos + m, 2] += wave

    banner("Mixed self-join: vector vs tensor-core vs FP64 oracle")
    oracle = matrix_profile(series, m=m, mode="FP64")
    vector = matrix_profile(series, m=m, mode="Mixed")
    tensor = matrix_profile(series, m=m, mode="Mixed", backend="tensor_core")
    assert tensor.backend == "tensor_core"

    rows = []
    for label, result in (("vector", vector), ("tensor-core", tensor)):
        err = float(
            np.nanmax(np.abs(result.profile - oracle.profile))
        )
        j, i = result.motif_location(k=1)
        # The two planted windows sit |b_pos - a_pos| segments apart.
        hit = abs(abs(j - i) - abs(b_pos - a_pos)) <= 1
        rows.append([label, f"{err:.5f}", "yes" if hit else "no"])
    print_table(["main loop", "max |P - P_fp64|", "motif found"], rows)

    bound = tc_gemm_error_bound(
        n_seg, m, "Mixed", row_block=RunConfig().row_block
    )
    print(f"\na-priori tensor-core bound (corr): {bound:.5f} — the panel's "
          "FP32 accumulator")
    print("keeps rounding per *block* in half precision, not per row.")

    banner("Fallback routing: ineligible jobs take the vector path")
    fp64 = matrix_profile(series, m=m, mode="FP64", backend="tensor_core")
    print(f"FP64 request  -> backend={fp64.backend!r}")
    print(f"                 reason: {fp64.backend_fallback_reason}")
    cpu = matrix_profile(
        series[:, :2], m=m, mode="Mixed", device="Skylake16",
        backend="tensor_core",
    )
    print(f"CPU request   -> backend={cpu.backend!r}")
    print(f"                 reason: {cpu.backend_fallback_reason}")


if __name__ == "__main__":
    main()
