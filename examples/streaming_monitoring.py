#!/usr/bin/env python
"""Live monitoring with the streaming matrix profile.

The case studies of the paper (HPC monitoring, turbine surveillance) are
inherently *online*: samples arrive continuously and anomalies should be
flagged as soon as a window completes.  This example feeds a simulated
live sensor stream — normal periodic operation with one injected fault —
into :class:`repro.apps.StreamingMatrixProfile` and raises an alert when
the nearest-neighbour distance to the healthy reference jumps.

Run:  python examples/streaming_monitoring.py
"""

import numpy as np

from repro.apps import StreamingMatrixProfile
from repro.core.config import RunConfig
from repro.reporting import banner, print_table


def healthy_signal(n: int, rng: np.random.Generator, d: int = 3) -> np.ndarray:
    t = np.arange(n)
    out = np.stack(
        [np.sin(2 * np.pi * t / (20 + 7 * k)) for k in range(d)], axis=1
    )
    return out + 0.08 * rng.normal(size=(n, d))


def main() -> None:
    rng = np.random.default_rng(11)
    m = 32
    d = 3

    banner("Building the healthy reference model")
    reference = healthy_signal(1024, rng, d)
    stream = StreamingMatrixProfile(reference, m, RunConfig(mode="Mixed"))
    print(f"reference: {reference.shape[0]} samples, {d} sensors, window m={m}")

    banner("Streaming live data (fault injected at t=300)")
    live = healthy_signal(480, rng, d)
    live[300:340, 1] += np.linspace(0, 3.0, 40)  # drifting sensor fault

    alerts = []
    threshold = None
    distances = []
    for t, sample in enumerate(live):
        out = stream.append(sample)
        if out is None:
            continue
        profile_row, _ = out
        score = profile_row[d - 1]  # full-dimensional consensus distance
        distances.append(score)
        if threshold is None and len(distances) == 100:
            threshold = float(np.mean(distances) + 6 * np.std(distances))
            print(f"calibrated alert threshold after 100 windows: {threshold:.3f}")
        if threshold is not None and score > threshold:
            alerts.append((t, score))

    banner("Alerts")
    if alerts:
        first, last = alerts[0], alerts[-1]
        rows = [
            ["first alert", first[0], f"{first[1]:.3f}"],
            ["last alert", last[0], f"{last[1]:.3f}"],
            ["total alerts", len(alerts), "-"],
        ]
        print_table(["event", "sample #", "distance"], rows)
        print(f"fault was injected at samples 300..340 -> detected at "
              f"{first[0]} (latency {first[0] - 300} samples)")
    else:
        print("no alerts raised (unexpected — the fault should trigger)")


if __name__ == "__main__":
    main()
