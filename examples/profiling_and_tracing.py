#!/usr/bin/env python
"""Performance introspection: profiler report, chrome trace, energy.

Runs one tiled multi-GPU computation and shows the three introspection
surfaces a performance engineer would reach for:

1. the Nsight-style per-kernel profile (time share, traffic, binding
   resource),
2. a chrome://tracing / Perfetto timeline export of the simulated
   streams and copy engines,
3. the energy estimate per precision mode.

Run:  python examples/profiling_and_tracing.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import matrix_profile
from repro.gpu.energy import estimate_energy
from repro.gpu.profiler import render_report
from repro.gpu.tracing import export_chrome_trace
from repro.reporting import banner, print_table


def main() -> None:
    rng = np.random.default_rng(13)
    series = rng.normal(size=(1536, 8))

    banner("Profiling a tiled 2-GPU run (Mixed precision)")
    result = matrix_profile(series, m=64, mode="Mixed", n_tiles=8, n_gpus=2)
    print(render_report(result, "A100"))

    banner("Exporting the timeline for chrome://tracing / Perfetto")
    out = Path(tempfile.gettempdir()) / "repro_trace.json"
    path = export_chrome_trace(result, out)
    print(f"wrote {path} — open chrome://tracing and load it to see the")
    print("two GPUs' compute/DMA engines, stream interleaving and the")
    print("host-side tile merge.")

    banner("Energy per precision mode (same problem)")
    rows = []
    for mode in ("FP64", "FP32", "FP16", "Mixed", "FP16C"):
        r = matrix_profile(series, m=64, mode=mode, n_tiles=8, n_gpus=2)
        e = estimate_energy(r, "A100")
        rows.append(
            [mode, f"{r.modeled_time * 1e3:.1f} ms", f"{e.total_energy:.2f} J",
             f"{e.average_power:.0f} W"]
        )
    print_table(["mode", "modelled time", "energy", "avg power/GPU"], rows)
    print("Reduced precision saves energy roughly in proportion to time —")
    print("the kernels are memory-bound, so power stays near-constant.")


if __name__ == "__main__":
    main()
