#!/usr/bin/env python
"""The streaming ingestion tier: exact increments, sketch gating, tenancy.

Drives the `repro.streams` subsystem through its three headline
behaviours:

1. **Bit-identical incremental profiles** — a stream grown by arbitrary
   append schedules equals a batch recompute over its equivalent tile
   list, bit for bit, even in FP16.
2. **Sketch-gated escalation** — a gated tenant sketches every window
   online and spends exact tile work only on discord alarms, suppressing
   most of the exact columns while still catching a planted anomaly.
3. **Multi-tenant serving** — exact, gated, sliding-retention and
   deadline-shed tenants share one simulated GPU pool, with per-tenant
   counters and the service metrics stream section.

Run:  python examples/stream_demo.py
"""

import numpy as np

from repro.core.config import RunConfig
from repro.core.tiling import assign_tiles
from repro.engine.accumulate import ProfileAccumulator
from repro.engine.backends import NumericBackend
from repro.engine.dispatch import execute_plan
from repro.engine.plan import JobSpec
from repro.gpu.simulator import GPUSimulator
from repro.reporting import banner, render_service_metrics, render_stream_tenants
from repro.streams import IncrementalMatrixProfile, StreamIngestService, TenantPolicy


def main() -> None:
    rng = np.random.default_rng(1234)
    m = 16
    n = 600
    wave = np.sin(np.linspace(0, n / 12, n))[:, None]
    series = wave + 0.05 * rng.standard_normal((n, 1))
    at = 480
    # Planted discord: a noise burst (shape anomaly) — per-window
    # z-normalisation makes pure offset bumps look ordinary.
    series[at : at + m] = rng.standard_normal((m, 1))

    banner("1. Incremental profile == batch recompute, bit for bit (FP16)")
    cfg = RunConfig(mode="FP16")
    inc = IncrementalMatrixProfile(m, cfg)
    for start in range(0, n, 75):  # eight appends
        inc.append(series[start : start + 75])
    p_inc, i_inc = inc.profile()

    tiles = list(inc.equivalent_tiles())
    spec = JobSpec.from_layouts(
        inc._stream, inc._stream, m, cfg, exclusion_zone=inc.exclusion_zone
    )
    sim = GPUSimulator(cfg.device, cfg.n_gpus, cfg.n_streams)
    plan = spec.plan(tiles=tiles, assignment=assign_tiles(tiles, sim.n_gpus))
    acc = ProfileAccumulator(spec.d, inc.n_q_seg, cfg.policy)
    execute_plan(plan, NumericBackend(), sim, accumulator=acc)
    identical = np.array_equal(
        p_inc.view(np.uint8), acc.host_profile().view(np.uint8)
    ) and np.array_equal(i_inc, acc.host_index())
    print(f"{len(tiles)} band tiles over 8 appends; "
          f"bit-identical to batch recompute: {identical}")
    print(f"top discord at segment {int(np.argmax(p_inc[:, 0]))} "
          f"(planted at {at})")

    banner("2. Sketch gate: exact work only on discord alarms")
    svc = StreamIngestService(device="A100", n_gpus=2)
    svc.register("exact", TenantPolicy(m=m, mode="FP32"))
    svc.register(
        "gated",
        TenantPolicy(m=m, mode="FP32", sketch_gate=True,
                     sketch_warmup=24, sketch_seed=1),
    )
    for start in range(0, n, 25):
        chunk = series[start : start + 25]
        svc.ingest("exact", chunk)
        svc.ingest("gated", chunk)
    gated = svc.tenant("gated").counters
    alarmed = [s.position for s in svc.scores("gated") if s.alarm]
    hit = any(at - m < p < at + m for p in alarmed)
    print(f"gated tenant: {gated.segments} segments, {gated.alarms} alarms, "
          f"{gated.suppression_ratio:.0%} of exact columns suppressed")
    print(f"planted discord alarmed: {hit}")

    banner("3. Multi-tenant pool: sliding retention + deadline shedding")
    svc.register(
        "sliding",
        TenantPolicy(m=m, mode="FP32", window="sliding", retention=150),
    )
    svc.register("shed", TenantPolicy(m=m, mode="FP64", deadline=1e-9))
    for start in range(0, n, 25):
        chunk = series[start : start + 25]
        svc.ingest("sliding", chunk)
        report = svc.ingest("shed", chunk)
    print(f"shed tenant last step ran at {report.mode.value} "
          f"({report.shed_steps} ladder steps below FP64)")
    print()
    print(render_stream_tenants(svc.tenant(t) for t in svc.tenants()))
    print()
    print(render_service_metrics(svc.metrics.snapshot()))


if __name__ == "__main__":
    main()
