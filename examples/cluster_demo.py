#!/usr/bin/env python
"""Elastic multi-node sharding: node-loss recovery, quotas, autoscaling.

Drives the `repro.cluster` tier through its headline behaviours:

1. **Bit-identical node-loss recovery** — a seeded storm kills 25% of
   the fleet mid-run; the heartbeat detector fires, unfinished tiles
   re-shard to the survivors, and the profile matches the fault-free
   run bit for bit.
2. **Coordinator crash + resume** — the run journal is always an
   ascending tile-id prefix, so a coordinator dying mid-recovery
   resumes — even into a *different* storm — with identical output.
3. **Elastic serving** — per-tenant quotas and queue-depth backpressure
   shed excess submissions, and the autoscaler grows the fleet from the
   admission controller's EMA backlog signal.

Run:  python examples/cluster_demo.py
"""

import numpy as np

from repro import matrix_profile
from repro.cluster import (
    ClusterAutoscaler,
    ClusterDispatcher,
    ClusterSpec,
    NodeFaultPlan,
    QuotaExceededError,
    TenantQuota,
    resume_cluster,
)
from repro.core.config import RunConfig
from repro.engine.checkpoint import RunJournal
from repro.engine.plan import JobSpec
from repro.reporting import banner, render_cluster_health, render_service_metrics
from repro.service import JobRequest, MatrixProfileService


def main() -> None:
    rng = np.random.default_rng(11)
    t = np.arange(300)
    series = (
        np.stack([np.sin(2 * np.pi * t / (18 + 7 * k)) for k in range(2)], axis=1)
        + 0.1 * rng.standard_normal((300, 2))
    )
    m = 24

    banner("1. Kill 25% of the fleet mid-run: bit-identical recovery")
    cluster = ClusterSpec(n_nodes=8, gpus_per_node=1)
    spec = JobSpec.from_arrays(series, None, m, RunConfig())
    clean = ClusterDispatcher(cluster).run(spec, n_tiles=16)
    storm = ClusterDispatcher(
        cluster, node_faults=NodeFaultPlan(seed=1, crash_nodes=(1, 5))
    ).run(spec, n_tiles=16)
    identical = np.array_equal(storm.profile, clean.profile) and np.array_equal(
        storm.index, clean.index
    )
    print(render_cluster_health(storm))
    print(f"bit-identical to the fault-free run: {identical}")

    banner("2. Coordinator crash mid-recovery, resume into a new storm")
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = f"{tmp}/journal"
        journal = RunJournal.create(
            path, spec, spec.plan(n_tiles=16),
            extra={"cluster": cluster.to_dict()},
        )
        dispatcher = ClusterDispatcher(
            cluster, node_faults=NodeFaultPlan(seed=1, crash_nodes=(1, 5))
        )
        real_record = journal.record
        merged = {"n": 0}

        def crashing_record(execution, accumulator):
            if merged["n"] >= 6:
                raise KeyboardInterrupt("coordinator dies")
            merged["n"] += 1
            real_record(execution, accumulator)

        journal.record = crashing_record
        try:
            dispatcher.run(spec, n_tiles=16, journal=journal)
        except KeyboardInterrupt:
            print(f"coordinator crashed after merging {merged['n']} tiles")
        resumed = resume_cluster(
            path, node_faults=NodeFaultPlan(seed=9, crash_nodes=(2,))
        )
        print(f"resumed: {resumed.tiles_restored} restored, "
              f"{resumed.tiles_completed}/{resumed.tiles_total} completed "
              f"under a different storm")
        print(f"still bit-identical: "
              f"{np.array_equal(resumed.profile, clean.profile)}")

    banner("3. Quotas, backpressure, and backlog-driven autoscaling")
    service = MatrixProfileService(
        device="A100",
        n_gpus=2,
        cluster=ClusterSpec(n_nodes=1, gpus_per_node=2),
        autoscaler=ClusterAutoscaler(
            min_nodes=1, max_nodes=4,
            scale_up_backlog=1e-4, scale_down_backlog=0.0, cooldown=0,
        ),
        default_quota=TenantQuota(max_pending=2),
    )
    for i in range(6):
        tenant = f"tenant-{i % 2}"
        try:
            service.submit(JobRequest(reference=series, m=m, tenant=tenant))
            print(f"admitted job for {tenant}")
        except QuotaExceededError as exc:
            print(f"shed: {exc}")
    service.process_all()
    print(f"fleet autoscaled to "
          f"{service.cluster_dispatcher.cluster.n_nodes} node(s)")
    print()
    print(render_service_metrics(service.metrics.snapshot()))

    # The cluster path is the same numerics as the one-shot API.
    one_shot = matrix_profile(series, m=m, n_tiles=16)
    print(f"cluster result matches matrix_profile(n_tiles=16): "
          f"{np.array_equal(clean.profile, one_shot.profile)}")


if __name__ == "__main__":
    main()
