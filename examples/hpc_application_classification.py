#!/usr/bin/env python
"""Case study VI-A: classifying HPC applications from monitoring data.

Reproduces the HPC-ODA pipeline on a synthetic substitute dataset: a
16-sensor labelled monitoring trace is split into reference and query
halves, the multi-dimensional matrix profile links every query segment to
its nearest reference segment, and a nearest-neighbour classifier
transfers the labels.  The paper's finding: classification stays accurate
(>95% F-score for Mixed/FP16C) under reduced precision while the analysis
gets faster.

Run:  python examples/hpc_application_classification.py
"""

import numpy as np

from repro.apps import classify_hpcoda
from repro.datasets import APPLICATION_CLASSES, make_hpcoda_dataset
from repro.metrics import confusion_matrix
from repro.reporting import banner, format_seconds, print_table


def main() -> None:
    m = 32
    banner("Generating synthetic HPC-ODA-style dataset")
    dataset = make_hpcoda_dataset(n_per_half=2048, d=16, phase_length=(96, 256), seed=3)
    print(f"sensors: {dataset.d}, samples/half: {dataset.reference.shape[0]}")
    print(f"classes: {', '.join(APPLICATION_CLASSES)}")

    banner("Fig. 9: F-score and runtime per precision mode")
    rows = []
    outcomes = {}
    for mode in ("FP64", "FP32", "FP16", "Mixed", "FP16C"):
        out = classify_hpcoda(dataset, m=m, mode=mode)
        outcomes[mode] = out
        rows.append(
            [
                mode,
                f"{out.f_score:.3f}",
                f"{out.accuracy:.3f}",
                format_seconds(out.runtime),
            ]
        )
    print_table(["mode", "F-score", "accuracy", "modelled runtime"], rows)

    banner("Fig. 8: prediction timeline excerpt (FP64)")
    out = outcomes["FP64"]
    # Render a coarse text timeline: one glyph per 16 segments.
    glyphs = "_KLlAPQ"  # None,Kripke,LAMMPS,linpack,AMG,PENNANT,Quicksilver
    step = 16
    pred_line = "".join(
        glyphs[int(np.bincount(out.predictions[s : s + step] + 1, minlength=8)[1:].argmax())]
        for s in range(0, len(out.predictions) - step, step)
    )
    true_line = "".join(
        glyphs[int(np.bincount(out.truth[s : s + step] + 1, minlength=8)[1:].argmax())]
        for s in range(0, len(out.truth) - step, step)
    )
    print("predicted:", pred_line)
    print("truth:    ", true_line)
    legend = ", ".join(f"{g}={c}" for g, c in zip(glyphs, APPLICATION_CLASSES))
    print("legend:   ", legend)

    banner("Confusion matrix (FP64)")
    cm = confusion_matrix(out.truth, out.predictions, n_classes=len(APPLICATION_CLASSES))
    print_table(
        ["true \\ pred"] + list(APPLICATION_CLASSES),
        [[APPLICATION_CLASSES[i]] + list(cm[i]) for i in range(len(APPLICATION_CLASSES))],
    )


if __name__ == "__main__":
    main()
