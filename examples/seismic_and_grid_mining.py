#!/usr/bin/env python
"""Mining the paper's motivating scientific domains.

The introduction cites matrix profile successes in earthquake foreshock
analysis and power-grid synchrophasor event labelling.  This example runs
both workflows end-to-end on synthetic stand-ins:

1. **Seismic**: a 3-component trace containing two repeating earthquake
   families; the self-join matrix profile pairs events of the same family
   (repeating-earthquake detection, the foreshock-study primitive).
2. **Synchrophasor**: an 8-channel PMU record with recurring grid events
   (sags, frequency excursions, oscillations); the matrix profile links
   each event to its recurrence, and reduced precision keeps up.

Run:  python examples/seismic_and_grid_mining.py
"""


from repro import matrix_profile
from repro.apps import top_motifs
from repro.datasets import make_pmu_dataset, make_seismic_dataset
from repro.reporting import banner, format_seconds, print_table


def seismic_study() -> None:
    banner("1. Repeating-earthquake detection (3-component trace)")
    ds = make_seismic_dataset(
        n=12_000, d=3, event_length=256, n_families=2, events_per_family=3,
        snr=8.0, seed=7,
    )
    print(f"trace: {ds.n} samples @ {ds.sampling_rate:.0f} Hz, "
          f"{len(ds.events)} events in 2 families")

    result = matrix_profile(ds.trace, m=256, mode="FP32")
    rows = []
    for e in sorted(ds.events, key=lambda e: e.position):
        match = int(result.index[e.position, 2])
        partner = min(
            (o for o in ds.events if o.position != e.position),
            key=lambda o: abs(o.position - match),
        )
        correct = partner.family == e.family and abs(partner.position - match) < 128
        rows.append(
            [e.position, e.family, match, partner.family,
             "same family ✓" if correct else "✗"]
        )
    print_table(
        ["event pos", "family", "best match", "matched family", "verdict"], rows
    )
    print(f"modelled A100 analysis time: {format_seconds(result.modeled_time)}")


def grid_study() -> None:
    banner("2. Synchrophasor event recurrence (4 PMUs, |V| + f channels)")
    ds = make_pmu_dataset(n=9000, n_pmus=4, event_duration=150,
                          events_per_type=2, seed=11)
    print(f"record: {ds.n} frames @ {ds.reporting_rate:.0f} fps, "
          f"{len(ds.events)} injected events")

    rows = []
    for mode in ("FP64", "Mixed"):
        result = matrix_profile(ds.measurements, m=150, mode=mode)
        by_kind = {}
        for e in ds.events:
            by_kind.setdefault(e.kind, []).append(e)
        matched = 0
        for kind, events in by_kind.items():
            probe, other = events[0], events[1]
            match = int(result.index[probe.position, 1])
            if abs(match - other.position) < 75:
                matched += 1
        rows.append(
            [mode, f"{matched}/{len(by_kind)}",
             format_seconds(result.modeled_time)]
        )
    print_table(["mode", "event types re-identified", "modelled time"], rows)

    banner("Top motifs of the grid record (2-dim consensus)")
    result = matrix_profile(ds.measurements, m=150, mode="FP64")
    rows = [
        [mo.query_pos, mo.ref_pos, f"{mo.distance:.3f}"]
        for mo in top_motifs(result, k=2, count=3)
    ]
    print_table(["segment", "matches segment", "distance"], rows)


def main() -> None:
    seismic_study()
    grid_study()


if __name__ == "__main__":
    main()
