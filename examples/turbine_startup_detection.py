#!/usr/bin/env python
"""Case study VI-C: detecting gas-turbine startup events.

Reproduces the heavy-duty gas-turbine experiment on synthetic telemetry:
single-dimensional speed series containing one of two startup profiles
(P1: two-stage ramp with ignition hold, P2: smooth s-ramp) are paired and
the matrix profile must locate the startup of the query series inside the
reference series.  Detection is scored with the relaxed recall metric
(r = 5% of the window length), per the pair categories of Table I.

Run:  python examples/turbine_startup_detection.py
"""

import numpy as np

from repro import matrix_profile
from repro.datasets import PAIR_CATEGORIES, make_turbine_pairs
from repro.metrics import relaxed_recall
from repro.reporting import banner, print_table


def _ascii_sparkline(values: np.ndarray, width: int = 72) -> str:
    glyphs = " .:-=+*#%@"
    step = max(1, len(values) // width)
    sampled = values[::step][:width]
    idx = np.clip((sampled * (len(glyphs) - 1)).astype(int), 0, len(glyphs) - 1)
    return "".join(glyphs[i] for i in idx)


def main() -> None:
    n, m = 2**13, 2**9  # scaled down from the paper's n=2^16, m=2^11
    n_pairs = 4
    relaxation = 0.05

    banner("Fig. 11: the two startup patterns")
    from repro.datasets import startup_pattern

    for kind in ("P1", "P2"):
        print(f"{kind}: {_ascii_sparkline(startup_pattern(kind, m))}")

    banner(f"Fig. 12: relaxed recall (r={relaxation:.0%}) per pair category")
    machine_sets = {
        "GT1": ("GT1", "GT1"),
        "GT1-GT2": ("GT1", "GT2"),
    }
    for set_name, machines in machine_sets.items():
        rows = []
        for category in PAIR_CATEGORIES:
            pairs = make_turbine_pairs(
                category, n_pairs, n, m, machines=machines, seed=31
            )
            row = [category.name]
            for mode in ("FP64", "FP32", "FP16", "Mixed", "FP16C"):
                q_pos, r_pos, indexes = [], [], None
                hits = 0
                total = 0
                for ref_series, qry_series in pairs:
                    result = matrix_profile(
                        ref_series.values, qry_series.values, m=m, mode=mode
                    )
                    targets_q = qry_series.positions_of(category.target)
                    targets_r = ref_series.positions_of(category.target)
                    recall = relaxed_recall(
                        result.index,
                        targets_q,
                        [targets_r[0]] * len(targets_q),
                        m,
                        relaxation=relaxation,
                    )
                    hits += recall / 100.0 * len(targets_q)
                    total += len(targets_q)
                row.append(f"{100.0 * hits / max(total, 1):.0f}%")
            rows.append(row)
        print_table(
            ["category", "FP64", "FP32", "FP16", "Mixed", "FP16C"],
            rows,
            title=f"Signals from {set_name}",
        )

    print("Expected (paper): FP64/FP32 at 100%; Mixed/FP16C above FP16; with\n"
          "larger relaxation factors every startup is recovered.")


if __name__ == "__main__":
    main()
