#!/usr/bin/env python
"""The roofline autotuner: every performance knob becomes a planner output.

Walks `repro.autotune` through its three contracts:

1. **Bit-identity** — `matrix_profile(..., auto=True)` picks row
   blocking, tile workers and tiling for the job shape, yet the profile
   is bit-identical to the constructor-default run (only
   cache-key-excluded knobs move absent an error target).
2. **Explainability** — `AutoTuner.tune()` returns the full decision:
   tile plan, roofline position, occupancy, and the ranked candidate
   list with rejection reasons.
3. **The error-target tier** — an explicit error budget unlocks the
   numerics-visible knobs: the tuner walks the precision ladder and
   picks the cheapest mode whose Section V-B bound stays inside it.

Run:  python examples/autotune_demo.py
"""

import time

import numpy as np

from repro import matrix_profile
from repro.autotune import AutoTuner
from repro.gpu.calibration import measure_host_profile
from repro.reporting import banner


def main() -> None:
    rng = np.random.default_rng(11)
    m = 32
    series = rng.normal(size=(256 + m - 1, 4)).cumsum(axis=0)

    banner("1. auto=True is bit-identical to the default config")
    # Calibrate the host cost model on this machine (cold starts fall
    # back to shipped defaults; `repro calibrate` persists a profile).
    calibration = measure_host_profile(n_seg=96)
    tuner = AutoTuner(device="A100", calibration=calibration)

    start = time.perf_counter()
    default = matrix_profile(series, m=m, mode="FP16")
    t_default = time.perf_counter() - start
    start = time.perf_counter()
    tuned = matrix_profile(series, m=m, mode="FP16", auto=True, tuner=tuner)
    t_auto = time.perf_counter() - start
    identical = np.array_equal(
        tuned.profile, default.profile, equal_nan=True
    ) and np.array_equal(tuned.index, default.index)
    print(f"default: {t_default * 1e3:.1f} ms   "
          f"auto: {t_auto * 1e3:.1f} ms (planner pass included)")
    print(f"profiles bit-identical: {identical}")

    banner("2. The decision, explained")
    decision = tuner.tune(256, 256, 4, m, mode="FP16")
    print(decision.explain())

    banner("3. An error target unlocks the precision ladder")
    for target in (1e-1, 1e-3, 1e-12):
        decision = tuner.tune(256, 256, 4, m, mode="FP64",
                              target_error=target)
        c = decision.chosen
        print(f"target {target:8.0e} -> {c.mode.value:5s} "
              f"(bound {c.error_bound:.3g}, {c.n_tiles} tile(s), "
              f"row_block={c.row_block}, precalc={c.precalc_strategy})")


if __name__ == "__main__":
    main()
