#!/usr/bin/env python
"""The paper's future-work directions, implemented (Section VII).

1. **TF32 / BFLOAT16** — software-rounded transprecision formats slotted
   between FP32 and FP16.
2. **Multi-node deployment** — MPI-style strong scaling across simulated
   4xA100 nodes.
3. **Motif subspace recovery** — which dimensions actually form the motif
   (mSTAMP's companion analysis).

Run:  python examples/future_work_extensions.py
"""

import numpy as np

from repro import matrix_profile
from repro.baselines import mstamp
from repro.extensions import (
    BF16,
    TF32,
    ClusterSpec,
    model_multi_node,
    motif_with_subspace,
    transprecision_matrix_profile,
)
from repro.metrics import recall_rate, relative_accuracy
from repro.reporting import banner, format_seconds, print_table


def main() -> None:
    rng = np.random.default_rng(21)

    banner("1. TF32 / BFLOAT16 transprecision")
    ref = rng.normal(size=(500, 4))
    qry = rng.normal(size=(500, 4))
    m = 32
    p64, i64 = mstamp(ref, qry, m)
    rows = []
    for fmt in (TF32, BF16):
        p, i = transprecision_matrix_profile(ref, qry, m, fmt)
        rows.append(
            [
                fmt.name,
                f"{fmt.precision} bits",
                f"{relative_accuracy(p, p64):.2f}%",
                f"{recall_rate(i, i64):.1f}%",
            ]
        )
    print_table(["format", "significand", "rel. accuracy", "recall"], rows)

    banner("2. Multi-node (MPI-style) strong scaling, n=2^17, d=2^6")
    base = model_multi_node(2**17, 64, 64, ClusterSpec(1))
    rows = []
    for n_nodes in (1, 2, 4, 8):
        r = model_multi_node(2**17, 64, 64, ClusterSpec(n_nodes))
        rows.append(
            [
                n_nodes,
                n_nodes * 4,
                format_seconds(r.total_time),
                format_seconds(r.broadcast_time + r.gather_time),
                f"{r.efficiency_vs(base):.1%}",
            ]
        )
    print_table(["nodes", "GPUs", "total", "communication", "efficiency"], rows)

    banner("3. Motif subspace recovery")
    n, d = 800, 6
    ref = rng.normal(size=(n, d))
    qry = rng.normal(size=(n, d))
    wave = 5.0 * np.sin(np.linspace(0, 4 * np.pi, m))
    motif_dims = (0, 2, 5)
    for dim in motif_dims:
        ref[120 : 120 + m, dim] += wave
        qry[600 : 600 + m, dim] += wave
    result = matrix_profile(ref, qry, m=m, mode="FP64")
    ss = motif_with_subspace(result, ref, qry, k=3)
    print(f"planted motif dims: {motif_dims}")
    print(f"recovered subspace: {tuple(sorted(ss.dimensions))} "
          f"at query {ss.query_pos} <-> reference {ss.ref_pos}")


if __name__ == "__main__":
    main()
