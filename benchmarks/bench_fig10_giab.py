"""Fig. 10 — GIAB genome mining: matrix-profile index recall and execution
time versus the number of tiles (paper: n=2^18, d=2^4, m=2^7).

Paper series: FP16 recall climbs from ~75% (1 tile) to >95% (1024 tiles);
Mixed/FP16C sit >95% for any tile count; execution time follows the same
dip-then-climb as Fig. 7 despite the larger problem.

Recall is executed for real on synthetic chromosomes at reduced scale;
times are modelled at the paper's n=2^18 scale.
"""

import pytest

from repro import RunConfig, matrix_profile, model_multi_tile
from repro.datasets import make_genome_dataset
from repro.metrics import recall_rate
from repro.reporting import format_table

from _harness import emit

PAPER_N, PAPER_D, PAPER_M = 2**18, 2**4, 2**7
TILES = (1, 4, 16, 64, 256, 1024)
RP_MODES = ("FP16", "Mixed", "FP16C")


@pytest.mark.benchmark(group="fig10")
def test_fig10_giab(benchmark):
    ds = make_genome_dataset(n=3072, d=8, m=64, genes_per_chromosome=2, seed=8)
    ref = matrix_profile(ds.reference, ds.query, m=ds.m, mode="FP64")

    recalls = {}
    rows = []
    for n_tiles in (1, 4, 16, 64, 256):
        row = [n_tiles]
        for mode in RP_MODES:
            r = matrix_profile(
                ds.reference, ds.query, m=ds.m, mode=mode, n_tiles=n_tiles
            )
            rec = recall_rate(r.index, ref.index)
            recalls[(mode, n_tiles)] = rec
            row.append(f"{rec:.1f}%")
        rows.append(row)

    time_rows = []
    times = {}
    for n_tiles in TILES:
        cfg = RunConfig(device="A100", n_tiles=n_tiles)
        t = model_multi_tile(PAPER_N, PAPER_D, PAPER_M, cfg).modeled_time
        times[n_tiles] = t
        time_rows.append([n_tiles, f"{t:.1f}"])

    blocks = [
        format_table(
            ["tiles"] + [f"R {m}" for m in RP_MODES],
            rows,
            "Fig. 10 (left): executed index recall vs tiles "
            "(synthetic genomes, reduced scale)",
        ),
        format_table(
            ["tiles", "modelled time (s)"],
            time_rows,
            f"Fig. 10 (right): modelled A100 time at paper scale "
            f"(n=2^18, d=2^4, m=2^7)",
        ),
    ]
    emit("fig10_giab", "\n\n".join(blocks))

    benchmark.pedantic(
        lambda: matrix_profile(ds.reference, ds.query, m=ds.m, mode="FP16", n_tiles=4),
        rounds=1,
        iterations=1,
    )

    # Paper claims: Mixed/FP16C high for any tiling; FP16 never degrades
    # with more tiles; the time curve turns upward by 1024 tiles.
    for n_tiles in (1, 64, 256):
        assert recalls[("Mixed", n_tiles)] > 90.0
        assert recalls[("FP16C", n_tiles)] > 90.0
    assert recalls[("FP16", 256)] >= recalls[("FP16", 1)] - 1.0
    assert times[1024] > times[256]
