"""Amortised precalculation bench — per-tile restart vs plan-level planes.

The tiling scheme restarts the precalculation kernel per tile, but only
the seed QT dot products actually depend on the tile: the window
statistics (mu/inv/df/dg) are window-local and identical across every
tile that covers a segment.  The plan-level
:class:`~repro.engine.precalc_cache.PrecalcPlaneCache` computes them
once per series and batches all seed rows sharing a band into one
vectorised pass — bit-identical output
(``tests/test_precalc_amortization.py`` pins this), so the only thing to
measure is wall clock.

Measurements (all on a precalc-bound configuration: many tiles over a
modest segment count with a long window, so the O(n·m·d) statistics pass
dominates the O(tile²·d) main loop):

1. **End-to-end engine** — a many-tile long-window self-join through
   :func:`~repro.core.multi_tile.compute_multi_tile`, amortised (the
   default) vs ``amortize_precalc=False`` (the historical per-tile
   restart).  Acceptance: >= 2x at full scale.
2. **Cross-job stats store** — the same plan prepared against a cold vs
   a warm :class:`~repro.service.PrecalcStatsCache`: a warm store skips
   the statistics pass entirely and only pays the seed batching.
3. **FFT seed strategy** — the opt-in ``precalc_strategy="fft"`` MASS
   path (FP64), end to end, for reference.

Results are archived to ``benchmarks/results/precalc_amortization.txt``
and ``BENCH_precalc_amortization.json`` at the repo root.
``REPRO_BENCH_SMOKE=1`` shrinks the problem and relaxes the speedup
floor for CI smoke runs.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile
from repro.engine import JobSpec
from repro.reporting import format_table
from repro.service import PrecalcStatsCache

from _harness import emit

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Precalc-bound reference config: tile edges comparable to the window
#: length, so the per-tile statistics restart is the dominant cost.
N_SEG = 128 if SMOKE else 256
M = 64 if SMOKE else 128
D = 4
N_TILES = 16 if SMOKE else 64
MODE = "FP16C"  # compensated precalc: the most precalc-heavy mode
REPEATS = 2 if SMOKE else 3
#: CI smoke boxes are noisy single-core runners; the real floor is
#: asserted at full scale.
MIN_SPEEDUP = 1.2 if SMOKE else 2.0

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_precalc_amortization.json"


def _series(n, d, seed=17):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d)).cumsum(axis=0)


def _timed(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _prepare_all(series, store):
    spec = JobSpec.from_arrays(
        series, None, M, RunConfig(mode=MODE, n_tiles=N_TILES)
    )
    plan = spec.plan(precalc_store=store)
    return [plan.precalc_cache.prepare(plan, t) for t in plan.tiles]


@pytest.mark.benchmark(group="precalc_amortization")
def test_precalc_amortization_speedup(benchmark):
    series = _series(N_SEG + M - 1, D)
    rows = []
    record = {
        "reference_config": {
            "n_seg": N_SEG, "d": D, "m": M, "n_tiles": N_TILES,
            "mode": MODE, "smoke": SMOKE,
        },
        "engine_level": {},
        "stats_store": {},
        "fft_strategy": {},
    }

    # -- end-to-end engine: the acceptance measurement -------------------
    cfg = dict(mode=MODE, n_tiles=N_TILES)
    r_off, t_off = _timed(
        lambda: compute_multi_tile(
            series, None, M, RunConfig(amortize_precalc=False, **cfg))
    )
    r_on, t_on = _timed(
        lambda: compute_multi_tile(series, None, M, RunConfig(**cfg))
    )
    assert np.array_equal(
        r_on.profile.view(np.uint8), r_off.profile.view(np.uint8)
    )
    assert np.array_equal(r_on.index, r_off.index)
    assert r_on.precalc_saved_flops > 0.0
    ratio = t_off / t_on
    rows.append([f"engine {MODE} per-tile precalc", f"{t_off * 1e3:9.1f}", "1.00x"])
    rows.append([f"engine {MODE} amortised", f"{t_on * 1e3:9.1f}", f"{ratio:.2f}x"])
    record["engine_level"] = {
        "per_tile_s": t_off, "amortized_s": t_on, "speedup": ratio,
        "saved_flops": r_on.precalc_saved_flops,
    }

    # -- cross-job stats store: cold vs warm -----------------------------
    store = PrecalcStatsCache()
    _, t_cold = _timed(lambda: _prepare_all(series, store), repeats=1)
    _, t_warm = _timed(lambda: _prepare_all(series, store))
    assert store.hits > 0
    rows.append(["prepare all tiles, cold store", f"{t_cold * 1e3:9.1f}", "1.00x"])
    rows.append(["prepare all tiles, warm store", f"{t_warm * 1e3:9.1f}",
                 f"{t_cold / t_warm:.2f}x"])
    record["stats_store"] = {
        "cold_s": t_cold, "warm_s": t_warm,
        "hits": store.hits, "misses": store.misses,
    }

    # -- FFT seed strategy (FP64, opt-in, not bit-identical) -------------
    fp64 = dict(mode="FP64", n_tiles=N_TILES)
    r_exact, t_exact = _timed(
        lambda: compute_multi_tile(series, None, M, RunConfig(**fp64))
    )
    r_fft, t_fft = _timed(
        lambda: compute_multi_tile(
            series, None, M, RunConfig(precalc_strategy="fft", **fp64))
    )
    max_dev = float(np.nanmax(np.abs(r_fft.profile - r_exact.profile)))
    rows.append(["engine FP64 exact seeds", f"{t_exact * 1e3:9.1f}", "1.00x"])
    rows.append(["engine FP64 fft seeds", f"{t_fft * 1e3:9.1f}",
                 f"{t_exact / t_fft:.2f}x"])
    record["fft_strategy"] = {
        "exact_s": t_exact, "fft_s": t_fft,
        "max_profile_deviation": max_dev,
    }

    table = format_table(
        ["configuration", "best (ms)", "speedup"],
        rows,
        f"Amortised precalculation, n_seg={N_SEG}, d={D}, m={M}, "
        f"{N_TILES} tiles (best of {REPEATS})",
    )
    emit("precalc_amortization", table)
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")

    benchmark.pedantic(
        lambda: compute_multi_tile(series, None, M, RunConfig(**cfg)),
        rounds=1, iterations=1,
    )

    assert ratio >= MIN_SPEEDUP, (
        f"amortised precalc speedup {ratio:.2f}x below the "
        f"{MIN_SPEEDUP}x floor"
    )
