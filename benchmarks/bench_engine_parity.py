"""Engine bench — the unified runtime reproduces the golden numerics.

Two claims about the `repro.engine` execution layer:

1. **Bit-exact parity** — the engine-backed single-tile and multi-tile
   paths reproduce the pre-refactor golden profiles/indices
   (`tests/golden/engine_parity.npz`) bit for bit in all five precision
   modes, self-join and AB-join.
2. **Shared diagonal uploads** — self-join diagonal tiles upload their
   identical row/col slice once; the saved H2D traffic is reported on
   the result and shrinks the modelled transfer time.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile
from repro.core.single_tile import compute_single_tile
from repro.reporting import format_table

from _harness import MODES, emit

GOLDEN = Path(__file__).parent.parent / "tests" / "golden" / "engine_parity.npz"
N_TILES, N_GPUS = 4, 2


@pytest.mark.benchmark(group="engine")
def test_engine_paths_match_golden_bit_for_bit(benchmark):
    golden = np.load(GOLDEN)
    ref, qry, m = golden["reference"], golden["query"], int(golden["m"])

    rows = []
    start = time.perf_counter()
    for mode in MODES:
        for join, query in (("self", None), ("ab", qry)):
            single = compute_single_tile(ref, query, m, RunConfig(mode=mode))
            multi = compute_multi_tile(
                ref, query, m,
                RunConfig(mode=mode, n_tiles=N_TILES, n_gpus=N_GPUS),
            )
            key = f"{mode}_{join}"
            single_ok = np.array_equal(
                single.profile, golden[f"single_{key}_profile"]
            ) and np.array_equal(single.index, golden[f"single_{key}_index"])
            multi_ok = np.array_equal(
                multi.profile, golden[f"multi_{key}_profile"]
            ) and np.array_equal(multi.index, golden[f"multi_{key}_index"])
            rows.append([
                mode, join,
                "bit-exact" if single_ok else "MISMATCH",
                "bit-exact" if multi_ok else "MISMATCH",
                f"{multi.h2d_saved_bytes / 1024:.1f} KiB",
            ])
            assert single_ok, f"single-tile {key} diverged from golden"
            assert multi_ok, f"multi-tile {key} diverged from golden"
    elapsed = time.perf_counter() - start

    table = format_table(
        ["mode", "join", "single tile", "multi tile", "h2d saved"],
        rows,
        f"Engine parity vs pre-refactor golden ({len(rows)} configs, "
        f"{elapsed:.1f}s)",
    )
    emit("engine_parity", table)

    benchmark.pedantic(
        lambda: compute_multi_tile(
            ref, None, m, RunConfig(n_tiles=N_TILES, n_gpus=N_GPUS)
        ),
        rounds=1,
        iterations=1,
    )

    # Self-joins saved H2D traffic on every diagonal tile; AB-joins never.
    saved = {
        (row[0], row[1]): row[4] for row in rows
    }
    assert all(saved[(mode, "ab")] == "0.0 KiB" for mode in MODES)
    assert all(saved[(mode, "self")] != "0.0 KiB" for mode in MODES)
