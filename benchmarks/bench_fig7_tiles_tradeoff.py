"""Fig. 7 — accuracy/performance trade-off as the tile count grows from 1
to 1024 on one A100 (n=2^16, d=2^6, m=2^6 in the paper).

Paper series: more tiles raise the FP16-family accuracy (the tiling
restarts the error-accumulating recurrence); execution time first *drops*
slightly (stream concurrency + L2 residency) and then climbs (CPU-side
merge overhead); 256 tiles beat 1 tile on both axes for the FP16 modes.

Accuracy is executed for real at reduced scale; times are modelled at the
paper scale.
"""

import pytest

from repro import RunConfig, matrix_profile, model_multi_tile
from repro.datasets import make_stress_dataset
from repro.metrics import embedded_motif_recall, recall_rate
from repro.reporting import format_table

from _harness import MODES, emit

TILES = (1, 4, 16, 64, 256, 1024)


@pytest.mark.benchmark(group="fig7")
def test_fig7_tiles_tradeoff(benchmark):
    # --- modelled execution time at paper scale, per mode and tile count.
    time_rows = []
    model_times = {}
    for n_tiles in TILES:
        row = [n_tiles]
        for mode in MODES:
            cfg = RunConfig(mode=mode, device="A100", n_tiles=n_tiles)
            t = model_multi_tile(2**16, 2**6, 2**6, cfg).modeled_time
            model_times[(mode, n_tiles)] = t
            row.append(f"{t:.2f}")
        time_rows.append(row)

    # --- executed accuracy at reduced scale.
    ds = make_stress_dataset(n=2048, d=8, m=32, amplitude=4.0, seed=6)
    ref = matrix_profile(ds.reference, ds.query, m=ds.m, mode="FP64")
    acc_rows = []
    recall_fp16 = {}
    for n_tiles in (1, 4, 16, 64, 256):
        row = [n_tiles]
        for mode in MODES:
            r = matrix_profile(ds.reference, ds.query, m=ds.m, mode=mode, n_tiles=n_tiles)
            rec = embedded_motif_recall(r.index, ds.motifs, k=1)
            idx_recall = recall_rate(r.index, ref.index)
            if mode == "FP16":
                recall_fp16[n_tiles] = idx_recall
            row.append(f"{rec:.0f}/{idx_recall:.0f}")
        acc_rows.append(row)

    blocks = [
        format_table(
            ["tiles"] + [f"{m} (s)" for m in MODES],
            time_rows,
            "Fig. 7 (x-axis): modelled A100 time vs tiles (n=2^16, d=2^6, m=2^6)",
        ),
        format_table(
            ["tiles"] + [f"{m} Remb/R (%)" for m in MODES],
            acc_rows,
            "Fig. 7 (y-axis): executed embedded-motif recall / index recall vs tiles "
            "(reduced scale n=2048, d=8, m=32)",
        ),
    ]
    emit("fig7_tiles_tradeoff", "\n\n".join(blocks))

    benchmark.pedantic(
        lambda: matrix_profile(ds.reference, ds.query, m=ds.m, mode="FP16", n_tiles=16),
        rounds=1,
        iterations=1,
    )

    # Paper claims on the modelled times.
    assert model_times[("FP64", 256)] < model_times[("FP64", 1)] * 1.02
    assert model_times[("FP64", 1024)] > model_times[("FP64", 256)]
    # Tiling must not degrade FP16 index recall.
    assert recall_fp16[256] >= recall_fp16[1] - 1.0
