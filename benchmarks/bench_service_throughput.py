"""Service bench — cache-driven throughput and precision-aware load shedding.

Two claims about the `repro.service` job service:

1. **Cache throughput** — on a repeated-query workload (few distinct
   series, many submissions) the content-addressed result cache lifts
   job throughput by at least 2x over the same service with caching
   disabled.
2. **Graceful degradation** — under a synthetic overload burst the
   admission controller walks jobs down the FP64 -> FP32 -> Mixed ->
   FP16 ladder instead of missing deadlines: zero jobs are dropped or
   cut short, and the downgrades appear in the `ServiceMetrics`
   snapshot.
"""

import time

import numpy as np
import pytest

from repro.reporting import format_table, render_service_metrics
from repro.service import JobRequest, JobStatus, LoadEstimator, MatrixProfileService

from _harness import emit

N, D, M = 512, 3, 32
DISTINCT = 3
REPEATS = 5  # submissions per distinct series


def _series_pool(seed=11):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(N, D)).cumsum(axis=0) for _ in range(DISTINCT)]


def _run_workload(use_cache):
    pool = _series_pool()
    service = MatrixProfileService(
        device="A100", n_gpus=2, n_workers=1, use_cache=use_cache,
        estimator=LoadEstimator("A100", seconds_per_cell=1e-12, learn=False),
    )
    start = time.perf_counter()
    jobs = [
        service.submit(JobRequest(reference=pool[i % DISTINCT], m=M))
        for i in range(DISTINCT * REPEATS)
    ]
    service.process_all()
    elapsed = time.perf_counter() - start
    assert all(j.outcome.status is JobStatus.COMPLETED for j in jobs)
    return service, len(jobs) / elapsed


@pytest.mark.benchmark(group="service")
def test_cache_doubles_repeated_query_throughput(benchmark):
    cold, cold_tput = _run_workload(use_cache=False)
    warm, warm_tput = _run_workload(use_cache=True)
    speedup = warm_tput / cold_tput

    snap = warm.metrics.snapshot()
    table = format_table(
        ["configuration", "jobs/s", "cache hit rate"],
        [
            ["cache disabled", f"{cold_tput:.1f}", "-"],
            ["cache enabled", f"{warm_tput:.1f}", f"{snap.cache_hit_rate:.0%}"],
            ["speedup", f"{speedup:.2f}x", ""],
        ],
        f"Repeated-query workload ({DISTINCT} series x {REPEATS} submissions, "
        f"n={N}, d={D}, m={M})",
    )
    emit("service_cache_throughput", table)

    benchmark.pedantic(
        lambda: _run_workload(use_cache=True), rounds=1, iterations=1
    )

    # Each distinct series computes once; every repeat is a cache hit.
    assert snap.cache_hits == DISTINCT * (REPEATS - 1)
    assert speedup >= 2.0, f"cache speedup only {speedup:.2f}x"


@pytest.mark.benchmark(group="service")
def test_overload_burst_downgrades_instead_of_dropping(benchmark):
    pool = _series_pool(seed=23)
    # A pessimistic, non-learning estimator makes the backlog arithmetic
    # deterministic: estimates overrun the deadline budget while the real
    # (fast) compute still finishes every job in full.
    service = MatrixProfileService(
        device="A100", n_gpus=2, n_workers=1, use_cache=False,
        estimator=LoadEstimator("A100", seconds_per_cell=2e-6, learn=False),
    )
    jobs = [
        service.submit(
            JobRequest(reference=pool[i % DISTINCT], m=M, deadline=5.0)
        )
        for i in range(12)
    ]
    service.process_all()

    outcomes = [j.outcome for j in jobs]
    snap = service.metrics.snapshot()
    mode_rows = [
        [j.job_id, o.requested_mode.value, o.effective_mode.value,
         o.downgrade_steps, str(o.status)]
        for j, o in zip(jobs, outcomes)
    ]
    table = format_table(
        ["job", "requested", "ran", "steps shed", "status"],
        mode_rows,
        "Overload burst (12 jobs, 5 s deadlines, pessimistic estimator)",
    )
    emit(
        "service_overload_degradation",
        table + "\n\n" + render_service_metrics(snap),
    )

    benchmark.pedantic(service.metrics.snapshot, rounds=1, iterations=1)

    # Nothing dropped, nothing cut short...
    assert snap.jobs_failed == 0
    assert snap.jobs_partial == 0
    assert all(o.status is JobStatus.COMPLETED for o in outcomes)
    # ...the first job ran at full precision, later ones shed it...
    assert outcomes[0].effective_mode.value == "FP64"
    assert any(o.degraded for o in outcomes)
    # ...and the shedding is visible in the metrics snapshot.
    assert snap.precision_downgrades > 0
    assert snap.downgraded_jobs > 0
