"""Ablation — traversal order: STOMP rows vs SCRIMP diagonals.

The paper's GPU kernel iterates rows (dense planes suit the sort/scan
stage); the SCRIMP++ lineage samples diagonals.  Exactness is identical;
the interesting difference is *anytime convergence* — a sampled diagonal
spreads its contribution across the whole profile, while a sampled row
only refines via one reference position.  This bench measures both
convergence curves on the same data.
"""

import numpy as np
import pytest

from repro.core.anytime import anytime_matrix_profile
from repro.core.scrimp import diagonal_matrix_profile
from repro.datasets import make_stress_dataset
from repro.reporting import format_table

from _harness import emit

FRACTIONS = (0.1, 0.25, 0.5, 1.0)


def _converged(approx, exact, tol=0.05):
    rel = np.abs(approx.profile - exact.profile) / np.maximum(exact.profile, 1e-12)
    return float(np.mean(rel <= tol))


@pytest.mark.benchmark(group="ablation")
def test_ablation_traversal_order(benchmark):
    ds = make_stress_dataset(n=768, d=4, m=32, amplitude=4.0, seed=41)
    exact = anytime_matrix_profile(ds.reference, ds.query, ds.m, fraction=1.0)

    rows = []
    results = {}
    for frac in FRACTIONS:
        row_conv = _converged(
            anytime_matrix_profile(ds.reference, ds.query, ds.m, fraction=frac,
                                   seed=2),
            exact,
        )
        diag_conv = _converged(
            diagonal_matrix_profile(ds.reference, ds.query, ds.m, fraction=frac,
                                    seed=2),
            exact,
        )
        results[frac] = (row_conv, diag_conv)
        rows.append([f"{frac:.0%}", f"{row_conv:.1%}", f"{diag_conv:.1%}"])

    table = format_table(
        ["work done", "row order (STOMP-style)", "diagonal order (SCRIMP-style)"],
        rows,
        "Ablation: anytime convergence by traversal order (n=768, d=4, m=32)",
    )
    emit("ablation_traversal", table)

    benchmark.pedantic(
        lambda: diagonal_matrix_profile(
            ds.reference[:300], ds.query[:300], ds.m, fraction=0.25, seed=2
        ),
        rounds=1,
        iterations=1,
    )

    # Both must be exact at 100% and dominate the linear baseline at 25%.
    assert results[1.0][0] > 0.999
    assert results[1.0][1] > 0.999
    assert results[0.25][0] > 0.25
    assert results[0.25][1] > 0.25
