"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper: it computes
the same series the figure plots (real numerics at reduced scale, modelled
times at paper scale), prints the rows, and archives them under
``benchmarks/results/`` so the output survives pytest's capture.

Run the full harness with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to watch the tables stream by; they are always written to the
results directory regardless.
"""

from __future__ import annotations

import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: The five precision modes, in the paper's plotting order.
MODES = ("FP64", "FP32", "FP16", "Mixed", "FP16C")

#: Reduced-scale defaults for *executed* (not modelled) experiments.  The
#: paper's n=2^16 costs O(n^2 d) scalar ops — infeasible in pure Python —
#: and the accuracy trends are functions of stream length and machine eps,
#: so they reproduce at these sizes.
EXEC_N = 1536
EXEC_D = 8
EXEC_M = 32


def emit(name: str, text: str) -> None:
    """Print a result block and archive it to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(text, file=sys.stderr)
    print(text)


def series_label(exp: str, paper: str, ours: str) -> str:
    """Standard paper-vs-measured annotation line."""
    return f"[{exp}] paper: {paper}\n[{exp}] ours:  {ours}"
