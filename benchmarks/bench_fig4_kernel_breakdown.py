"""Fig. 4 — kernel execution-time breakdown of the single-tile run on the
A100, versus n (d=2^6) and versus d (n=2^16).

Paper series: total ~15 s at n=2^16, d=2^6; execution time grows
quadratically with n; ``dist_calc`` dominates at small d while
``sort_&_incl_scan`` takes over at large d.  Times at paper scale come
from the calibrated roofline model; a reduced-scale executed run
cross-checks that the model agrees with the costs the kernels actually
record.
"""

import numpy as np
import pytest

from repro import matrix_profile
from repro.core.single_tile import KERNEL_ORDER
from repro.gpu.perfmodel import single_tile_timing
from repro.reporting import format_table

from _harness import emit


def _row(label, timing):
    cells = [label]
    total = 0.0
    for name in KERNEL_ORDER:
        t = timing.kernels[name].total
        total += t
        cells.append(f"{t:.2f}")
    cells.append(f"{total:.2f}")
    return cells


@pytest.mark.benchmark(group="fig4")
def test_fig4_kernel_breakdown(benchmark):
    headers = ["param"] + list(KERNEL_ORDER) + ["total (s)"]

    rows_n = [
        _row(f"n=2^{e}", single_tile_timing(2**e, 2**e, 2**6, 2**6, "A100", 8))
        for e in (13, 14, 15, 16)
    ]
    rows_d = [
        _row(f"d=2^{e}", single_tile_timing(2**16, 2**16, 2**e, 2**6, "A100", 8))
        for e in (3, 4, 5, 6)
    ]

    blocks = [
        format_table(headers, rows_n, "Fig. 4 (left): breakdown vs n (d=2^6, m=2^6, A100, FP64)"),
        format_table(headers, rows_d, "Fig. 4 (right): breakdown vs d (n=2^16, m=2^6, A100, FP64)"),
    ]

    # Cross-check: executed reduced-scale run, breakdown from real costs.
    rng = np.random.default_rng(0)
    ts_r = rng.normal(size=(1024, 8))
    ts_q = rng.normal(size=(1024, 8))
    result = benchmark.pedantic(
        lambda: matrix_profile(ts_r, ts_q, m=64, mode="FP64", device="A100"),
        rounds=1,
        iterations=1,
    )
    breakdown = result.kernel_breakdown()
    blocks.append(
        format_table(
            ["kernel", "modelled seconds"],
            [[k, f"{v:.3g}"] for k, v in breakdown.items()],
            "Cross-check: executed run (n=961 segments, d=8) breakdown from recorded costs",
        )
    )
    emit("fig4_kernel_breakdown", "\n\n".join(blocks))

    # Shape assertions.
    t16 = single_tile_timing(2**16, 2**16, 2**6, 2**6, "A100", 8)
    total = sum(k.total for k in t16.kernels.values())
    assert 12.0 < total < 22.0  # the paper's ~15 s anchor
    assert (
        t16.kernels["sort_&_incl_scan"].total > t16.kernels["dist_calc"].total
    )  # sort dominates at d=2^6
    t_small_d = single_tile_timing(2**16, 2**16, 2**3, 2**6, "A100", 8)
    assert (
        t_small_d.kernels["dist_calc"].total
        >= t_small_d.kernels["sort_&_incl_scan"].total * 0.9
    )  # dist dominates (or ties) at d=2^3
