"""Tensor-core main-loop bench — packed-panel chained GEMM vs the vector path.

The tensor-core path (``RunConfig.backend="tensor_core"``) replaces the
streaming Eq. (1) recurrence of ``dist_calc`` with batched 16x16x16 MMA
updates over a packed FP16 operand panel, accumulated in FP32 and carried
through a fused sort/scan + reduce-then-store update without intermediate
half roundings.  Unlike row blocking it is *not* bit-identical to the
per-row emulation — FP32 accumulation is the point — so this bench
measures both clocks:

1. **Speed (the acceptance measurement)** — one Mixed tile at the
   reference config, n_seg = 256, d = 8, m = 32 on the A100 launch,
   timed through :func:`repro.engine.backends.run_tile` with
   ``main_loop="vector"`` (row_block 32) vs ``main_loop="tensor_core"``.
   Acceptance: >= 2x for the tensor-core panel.
2. **Accuracy** — per-cell correlation error against the FP64
   brute-force oracle across 3 seeds x {self-join, AB-join}, asserted
   against the a-priori bound
   :func:`~repro.precision.errors.tc_gemm_error_bound`; plus the same
   measurement for all five vector precision modes so the table shows
   where the tensor-core path lands (between Mixed and FP32 — the panel
   accumulates in FP32 while its operands round to FP16).

Results are archived to ``benchmarks/results/tensor_core.txt`` and, for
machine consumption, ``BENCH_tensor_core.json`` at the repo root.
``REPRO_BENCH_SMOKE=1`` shrinks the problem and relaxes the speedup
floor for CI smoke runs.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.brute_force import znormalized_distance_matrix
from repro.engine.backends import WorkspacePool, run_tile
from repro.gpu.occupancy import launch_for_full_occupancy
from repro.kernels.dist_calc import DistCalcKernel
from repro.kernels.layout import to_device_layout
from repro.kernels.precalc import PrecalcKernel
from repro.kernels.tc_gemm import TcGemmKernel
from repro.precision.errors import tc_gemm_error_bound
from repro.precision.modes import policy_for
from repro.reporting import format_table

from _harness import MODES, emit

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: The reference config of the acceptance criterion: one Mixed tile on
#: the A100 preset.  n_seg = 256 reference segments, d = 8, m = 32.
N_SEG = 128 if SMOKE else 256
D = 8
M = 32
BLOCK = 32
SEEDS = (0, 1, 2)
REPEATS = 2 if SMOKE else 5
#: CI smoke boxes are noisy single-core runners; the real floor is
#: asserted at full scale.
MIN_SPEEDUP = 1.2 if SMOKE else 2.0

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_tensor_core.json"

LAUNCH = launch_for_full_occupancy("a100")
EZ = int(np.ceil(M / 4))


def _series(seed, length):
    rng = np.random.default_rng(seed)
    t = np.arange(length)[:, None]
    base = np.sin(2 * np.pi * t / (7.0 + np.arange(D)[None, :]))
    return base + 0.35 * rng.standard_normal((length, D))


def _max_corr_error(mode, tr, tq, ref_corr, tensor_core=False):
    """Max |corr - oracle| over the full tile, measured at the dist_calc
    output (corr = 1 - D^2 / 2m, the quantity the error bounds speak of)."""
    policy = policy_for(mode)
    tr_dev = to_device_layout(tr, policy.storage)
    tq_dev = to_device_layout(tq, policy.storage)
    n_r = tr_dev.shape[1] - M + 1
    n_q = tq_dev.shape[1] - M + 1
    if tensor_core:
        dist = TcGemmKernel(config=LAUNCH, policy=policy)
    else:
        dist = DistCalcKernel(config=LAUNCH, policy=policy)
    dist.bind(PrecalcKernel(config=LAUNCH, policy=policy).run(tr_dev, tq_dev, M))
    ws = None if tensor_core else np.empty(
        (D, BLOCK, n_q), dtype=policy.compute
    )
    err = 0.0
    for i0 in range(0, n_r, BLOCK):
        b = min(BLOCK, n_r - i0)
        blk = dist.run_block(i0, b, ws if ws is None else ws[:, :b]).astype(
            np.float64
        )
        corr = 1.0 - blk**2 / (2.0 * M)
        err = max(err, float(np.nanmax(np.abs(corr - ref_corr[:, i0:i0 + b]))))
    return err


def _time_tile(main_loop):
    policy = policy_for("Mixed")
    tr = to_device_layout(_series(SEEDS[0], N_SEG + M - 1), policy.storage)
    pool = WorkspacePool()

    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        out = run_tile(
            tr, tr, M, policy, LAUNCH,
            exclusion_zone=EZ, row_block=BLOCK, workspace=pool,
            main_loop=main_loop,
        )
        best = min(best, time.perf_counter() - start)
    return out, best


@pytest.mark.benchmark(group="tensor_core")
def test_tensor_core_speedup_and_parity(benchmark):
    rows = []
    record = {
        "reference_config": {"n_seg": N_SEG, "d": D, "m": M,
                             "row_block": BLOCK, "device": "A100",
                             "smoke": SMOKE},
        "parity": {},
        "mode_errors": {},
        "timing": {},
    }

    # -- accuracy: 3 seeds x {self, AB} against the a-priori bound -------
    bound = tc_gemm_error_bound(N_SEG, M, "Mixed", row_block=BLOCK)
    record["parity"]["bound"] = bound
    worst = 0.0
    for seed in SEEDS:
        for join in ("self", "ab"):
            ser_r = _series(seed, N_SEG + M - 1)
            ser_q = ser_r if join == "self" else _series(seed + 100,
                                                         N_SEG + M - 1)
            ref_dist = znormalized_distance_matrix(ser_r, ser_q, M)
            ref_corr = 1.0 - ref_dist.transpose(2, 0, 1) ** 2 / (2.0 * M)
            err = _max_corr_error("Mixed", ser_r, ser_q, ref_corr,
                                  tensor_core=True)
            worst = max(worst, err)
            record["parity"][f"seed{seed}_{join}"] = err
            assert err <= bound, (
                f"seed {seed} {join}-join tensor-core corr error {err:.6f} "
                f"above the a-priori bound {bound:.6f}"
            )
    record["parity"]["worst"] = worst
    rows.append(["tensor-core worst (6 runs)", f"{worst:.6f}",
                 f"bound {bound:.6f}"])

    # -- the same oracle delta for the five vector modes -----------------
    ser = _series(SEEDS[0], N_SEG + M - 1)
    ref_dist = znormalized_distance_matrix(ser, ser, M)
    ref_corr = 1.0 - ref_dist.transpose(2, 0, 1) ** 2 / (2.0 * M)
    for mode in MODES:
        err = _max_corr_error(mode, ser, ser, ref_corr)
        record["mode_errors"][mode] = err
        rows.append([f"vector {mode}", f"{err:.6f}", ""])
    tc_err = record["parity"][f"seed{SEEDS[0]}_self"]
    record["mode_errors"]["tensor_core"] = tc_err
    rows.append(["tensor-core Mixed", f"{tc_err:.6f}", ""])

    # -- speed: the acceptance measurement -------------------------------
    out_vec, t_vec = _time_tile("vector")
    out_tc, t_tc = _time_tile("tensor_core")
    speedup = t_vec / t_tc
    # Sanity on the outputs: same geometry, same motif structure (the
    # numerics differ by design — FP32 accumulation).
    assert out_tc.profile.shape == out_vec.profile.shape
    agree = float(np.mean(out_tc.indices == out_vec.indices))
    rows.append([f"vector Mixed block={BLOCK}", f"{t_vec * 1e3:9.1f} ms",
                 "1.00x"])
    rows.append(["tensor-core Mixed", f"{t_tc * 1e3:9.1f} ms",
                 f"{speedup:.2f}x"])
    rows.append(["motif index agreement", f"{agree:.3f}", ""])
    record["timing"] = {
        "vector_s": t_vec, "tensor_core_s": t_tc, "speedup": speedup,
        "index_agreement": agree, "repeats": REPEATS,
        "min_speedup": MIN_SPEEDUP,
    }

    table = format_table(
        ["measurement", "value", "note"],
        rows,
        f"Tensor-core main loop, reference tile n_seg={N_SEG}, d={D}, "
        f"m={M} (A100 launch, best of {REPEATS})",
    )
    emit("tensor_core", table)
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")

    benchmark.pedantic(lambda: _time_tile("tensor_core"), rounds=1,
                       iterations=1)

    assert speedup >= MIN_SPEEDUP, (
        f"tensor-core reference tile speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP}x floor"
    )
