"""Streaming ingestion bench — incremental band tiles vs full recompute.

A monitoring deployment appends a small batch of samples and wants the
matrix profile current.  Without the streaming tier the only option is a
full recompute over the grown series — O(n²) work per append.  The
:class:`~repro.streams.IncrementalMatrixProfile` covers just the new
L-shaped band (O(n·k) for k new segments) with cached window-statistics
planes, bit-identical to the batch dispatch of the same tile list
(``tests/test_streams_incremental.py`` pins this), so the only thing to
measure is wall clock.

Measurements:

1. **Amortised append vs recompute** — per-batch append latency against
   a growing history vs a full engine recompute of the same series, at
   several history lengths.  Acceptance: >= 5x at the largest history
   (the band shrinks relative to the full join as history grows).
2. **Sketch-gated ingest** — a gated tenant over the same stream with a
   planted discord: the gate must suppress >= 50% of the exact column
   work while still alarming on (and exactly probing) the top-1 discord.

Results are archived to ``benchmarks/results/streaming_ingest.txt`` and
``BENCH_streaming_ingest.json`` at the repo root.  ``REPRO_BENCH_SMOKE=1``
shrinks the problem and relaxes the speedup floor for CI smoke runs.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile
from repro.reporting import format_table
from repro.streams import IncrementalMatrixProfile, StreamIngestService, TenantPolicy

from _harness import emit

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

M = 32 if SMOKE else 64
D = 2
BATCH = 32  # samples per append
#: Histories (in samples) the per-append step is measured against.
HISTORIES = (256, 512) if SMOKE else (512, 1024, 2048)
MODE = "FP32"
REPEATS = 2 if SMOKE else 3
#: CI smoke boxes are noisy single-core runners; the real floor is
#: asserted at full scale.
MIN_SPEEDUP = 2.0 if SMOKE else 5.0
MIN_SUPPRESSION = 0.5

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_streaming_ingest.json"


def _series(n, d, seed=29):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d)).cumsum(axis=0)


def _timed(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _grown_stream(series, history):
    inc = IncrementalMatrixProfile(M, RunConfig(mode=MODE))
    inc.append(series[:history])
    return inc


@pytest.mark.benchmark(group="streaming_ingest")
def test_streaming_ingest_speedup(benchmark):
    n_max = HISTORIES[-1] + BATCH
    series = _series(n_max, D)
    rows = []
    record = {
        "reference_config": {
            "m": M, "d": D, "batch": BATCH, "mode": MODE,
            "histories": list(HISTORIES), "smoke": SMOKE,
        },
        "amortised_append": [],
        "sketch_gate": {},
    }

    # -- amortised append vs full recompute ------------------------------
    ratio = 0.0
    for history in HISTORIES:
        grown = series[: history + BATCH]

        def _append_step():
            inc = _grown_stream(series, history)
            start = time.perf_counter()
            inc.append(grown[history:])
            return inc, time.perf_counter() - start

        t_inc = float("inf")
        inc = None
        for _ in range(REPEATS):
            inc, elapsed = _append_step()
            t_inc = min(t_inc, elapsed)
        r_full, t_full = _timed(
            lambda: compute_multi_tile(grown, None, M, RunConfig(mode=MODE))
        )
        ratio = t_full / t_inc
        # The incremental profile is a real profile: same motif structure
        # as the recompute (tilings differ, so compare values loosely).
        p_inc, _ = inc.profile()
        np.testing.assert_allclose(p_inc, r_full.profile, atol=1e-3)
        rows.append([
            f"recompute n={history + BATCH}", f"{t_full * 1e3:9.2f}", "1.00x",
        ])
        rows.append([
            f"append {BATCH} @ history {history}", f"{t_inc * 1e3:9.2f}",
            f"{ratio:.2f}x",
        ])
        record["amortised_append"].append({
            "history": history, "append_s": t_inc,
            "recompute_s": t_full, "speedup": ratio,
        })

    # -- sketch-gated ingest: suppression + discord recall ---------------
    n = HISTORIES[-1]
    at = int(n * 0.8)
    rng = np.random.default_rng(5)
    wave = np.sin(np.linspace(0, n / 12, n))[:, None] * np.ones((1, D))
    stream = wave + 0.05 * rng.standard_normal((n, D))
    # Planted discord: a noise burst (shape anomaly) — z-normalisation
    # makes pure offset bumps look ordinary, a shape change does not.
    stream[at : at + M] = rng.standard_normal((M, D))
    svc = StreamIngestService(n_gpus=1)
    svc.register(
        "gated",
        TenantPolicy(m=M, mode=MODE, sketch_gate=True,
                     sketch_warmup=24, sketch_seed=1),
    )
    _, t_gated = _timed(
        lambda: [svc.ingest("gated", stream[i : i + BATCH])
                 for i in range(0, n, BATCH)],
        repeats=1,
    )
    c = svc.tenant("gated").counters
    suppression = c.suppression_ratio
    alarmed = [s.position for s in svc.scores("gated") if s.alarm]
    discord_hit = any(at - M < p < at + M for p in alarmed)
    rows.append([
        f"gated ingest, {c.segments} segments", f"{t_gated * 1e3:9.2f}",
        f"{suppression:.0%} suppressed",
    ])
    record["sketch_gate"] = {
        "segments": c.segments, "alarms": c.alarms,
        "suppressed_columns": c.suppressed_columns,
        "exact_columns": c.exact_columns,
        "suppression_ratio": suppression,
        "discord_alarmed": bool(discord_hit),
        "ingest_s": t_gated,
    }

    table = format_table(
        ["configuration", "best (ms)", "speedup"],
        rows,
        f"Streaming ingestion, m={M}, d={D}, batch={BATCH}, {MODE} "
        f"(best of {REPEATS})",
    )
    emit("streaming_ingest", table)
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")

    benchmark.pedantic(
        lambda: _grown_stream(series, HISTORIES[0]).append(
            series[HISTORIES[0] : HISTORIES[0] + BATCH]
        ),
        rounds=1, iterations=1,
    )

    assert ratio >= MIN_SPEEDUP, (
        f"amortised append speedup {ratio:.2f}x at history {HISTORIES[-1]} "
        f"below the {MIN_SPEEDUP}x floor"
    )
    assert suppression >= MIN_SUPPRESSION, (
        f"sketch gate suppressed only {suppression:.0%} of exact columns"
    )
    assert discord_hit, "sketch gate missed the planted top-1 discord"
