"""Fault-tolerance bench — health-check overhead and fault-storm recovery.

Two claims about the engine's recovery machinery (`repro.engine.health`,
`repro.engine.faults`):

1. **Health checks are free on the happy path** — validating every
   tile's output (non-finite scan + implied-correlation bound) leaves
   the profile and index bit-identical to the unchecked run and costs
   only a small constant per tile, reported as a relative overhead.
2. **Fault storms are absorbed, not dropped** — under a 10% injected
   fault storm (transient device failures + NaN/Inf/negative output
   corruption) an FP16 job still completes every tile: corrupted tiles
   are re-executed up the FP16 -> Mixed -> FP32 -> FP64 escalation
   ladder, transients are retried on other GPUs, and the only cost is
   the recomputed-tile fraction and wall-clock latency reported here.

``REPRO_BENCH_SMOKE=1`` shrinks the problem for CI smoke runs.
"""

import os
import time

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile
from repro.engine.dispatch import CallbackObserver
from repro.engine.faults import FaultPlan
from repro.engine.health import HealthPolicy
from repro.reporting import format_table

from _harness import emit

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N = 384 if SMOKE else 1024
D = 3 if SMOKE else 6
M = 32
N_TILES = 9 if SMOKE else 16
N_GPUS = 3
STORM_RATE = 0.10
SEED = 7


def _series(seed=5):
    # Bounded amplitude keeps the fault-free FP16 path clear of genuine
    # overflow, so every escalation in the storm run is injection-driven.
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 24.0 * np.pi, N)
    base = np.sin(t)[:, None] * np.linspace(0.5, 1.5, D)[None, :]
    return base + 0.1 * rng.normal(size=(N, D))


def _config(mode):
    return RunConfig(mode=mode, n_tiles=N_TILES, n_gpus=N_GPUS)


def _timed(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


@pytest.mark.benchmark(group="faults")
def test_health_check_overhead_is_small_and_bit_exact(benchmark):
    series = _series()
    plain, t_plain = _timed(
        lambda: compute_multi_tile(series, None, M, _config("FP32"))
    )
    checked, t_checked = _timed(
        lambda: compute_multi_tile(
            series, None, M, _config("FP32"), health=HealthPolicy()
        )
    )
    overhead = t_checked / t_plain - 1.0

    table = format_table(
        ["configuration", "best of 3 (s)", "escalations"],
        [
            ["health checks off", f"{t_plain:.4f}", "-"],
            ["health checks on", f"{t_checked:.4f}", len(checked.escalations)],
            ["overhead", f"{overhead:+.1%}", ""],
        ],
        f"Health-check overhead, fault-free FP32 run "
        f"(n={N}, d={D}, m={M}, {N_TILES} tiles)",
    )

    benchmark.pedantic(
        lambda: compute_multi_tile(
            series, None, M, _config("FP32"), health=HealthPolicy()
        ),
        rounds=1, iterations=1,
    )

    # The happy path must be bit-identical: health checks only read.
    assert np.array_equal(plain.profile, checked.profile)
    assert np.array_equal(plain.index, checked.index)
    assert not checked.escalations
    emit("fault_recovery_overhead", table)


@pytest.mark.benchmark(group="faults")
def test_fault_storm_recovery_latency_and_recompute_fraction(benchmark):
    series = _series(seed=13)
    clean, t_clean = _timed(
        lambda: compute_multi_tile(
            series, None, M, _config("FP16"), health=HealthPolicy()
        )
    )

    def storm_run():
        executions = []
        observer = CallbackObserver(
            on_start=lambda tile, gpu, attempt: executions.append(tile.tile_id)
        )
        plan = FaultPlan(
            seed=SEED,
            transient_rate=STORM_RATE,
            corrupt_rate=STORM_RATE,
        )
        result = compute_multi_tile(
            series, None, M, _config("FP16"),
            health=HealthPolicy(),
            fault_plan=plan,
            max_retries=3,
            observers=(observer,),
        )
        return result, executions

    (stormed, executions), t_storm = _timed(storm_run)
    recompute = len(executions) / stormed.n_tiles - 1.0
    err = float(
        np.nanmax(np.abs(stormed.profile - clean.profile))
        if stormed.profile.size else 0.0
    )

    table = format_table(
        ["metric", "value"],
        [
            ["injected rate (transient + corrupt)", f"{STORM_RATE:.0%} each"],
            ["tiles (planned)", stormed.n_tiles],
            ["tile executions", len(executions)],
            ["recompute fraction", f"{recompute:.1%}"],
            ["escalated tiles", len(stormed.escalations)],
            ["clean latency (s)", f"{t_clean:.4f}"],
            ["storm latency (s)", f"{t_storm:.4f}"],
            ["recovery slowdown", f"{t_storm / t_clean:.2f}x"],
            ["max |storm - clean| profile delta", f"{err:.3g}"],
        ],
        f"FP16 fault storm (seed {SEED}, n={N}, d={D}, m={M}, "
        f"{N_TILES} tiles, {N_GPUS} GPUs)",
    )

    benchmark.pedantic(storm_run, rounds=1, iterations=1)

    # Every tile completed despite the storm...
    assert np.isfinite(stormed.profile).all()
    assert (stormed.index >= 0).all()
    # ...corruption was caught and escalated, not silently merged...
    assert stormed.escalations, "storm produced no escalations — rates too low?"
    # ...and the recovered profile stays within FP16-scale error of the
    # clean run (escalated tiles are *more* accurate, not less).
    assert err < 0.5
    emit("fault_recovery", table)
