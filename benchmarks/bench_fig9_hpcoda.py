"""Figs. 8 & 9 — HPC-ODA application classification case study.

Paper series (Fig. 9): F-score stays >0.95 for Mixed/FP16C and ~0.9 even
for FP16 while FP64/FP32 sit near 0.97; the runtime shrinks slightly with
reduced precision.  Fig. 8 is the colour-coded prediction timeline, which
we render as a per-class agreement summary.
"""

import numpy as np
import pytest

from repro.apps import classify_hpcoda
from repro.datasets import APPLICATION_CLASSES, make_hpcoda_dataset
from repro.reporting import format_table

from _harness import MODES, emit


@pytest.mark.benchmark(group="fig9")
def test_fig9_hpcoda_classifier(benchmark):
    dataset = make_hpcoda_dataset(
        n_per_half=2048, d=16, phase_length=(96, 256), seed=3
    )
    m = 32

    outcomes = {}
    rows = []
    for mode in MODES:
        out = classify_hpcoda(dataset, m=m, mode=mode)
        outcomes[mode] = out
        rows.append([mode, f"{out.f_score:.3f}", f"{out.accuracy:.3f}",
                     f"{out.runtime:.4f}"])
    blocks = [
        format_table(
            ["mode", "F-score", "accuracy", "modelled runtime (s)"],
            rows,
            "Fig. 9: nearest-neighbour classifier, F-score and runtime per mode",
        )
    ]

    # Fig. 8 proxy: per-class recall of the FP64 timeline.
    out = outcomes["FP64"]
    per_class = []
    for idx, name in enumerate(APPLICATION_CLASSES):
        mask = out.truth == idx
        if mask.any():
            per_class.append([name, int(mask.sum()),
                              f"{np.mean(out.predictions[mask] == idx):.1%}"])
    blocks.append(
        format_table(
            ["class", "segments", "timeline agreement"],
            per_class,
            "Fig. 8: per-class timeline agreement (FP64)",
        )
    )
    emit("fig9_hpcoda", "\n\n".join(blocks))

    benchmark.pedantic(
        lambda: classify_hpcoda(dataset, m=m, mode="Mixed"), rounds=1, iterations=1
    )

    # Paper claims: FP64 strong; Mixed/FP16C >= 0.9; reduced not slower.
    assert outcomes["FP64"].f_score > 0.85
    assert outcomes["Mixed"].f_score > 0.9
    assert outcomes["FP16C"].f_score > 0.9
    assert outcomes["FP16"].runtime <= outcomes["FP64"].runtime
