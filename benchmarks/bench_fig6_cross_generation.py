"""Fig. 6 — FP64 performance across hardware generations: the 16-core
Skylake (MP)^N baseline vs V100 vs A100, swept over n, d and m.

Paper series: 41.6x (V100) and 54.0x (A100) speedups at n=2^16, d=2^6,
m=2^6; time quadratic in n, linear in d, independent of m, for both CPU
and GPU.  A reduced-scale *measured* CPU-vs-CPU sanity point (mSTAMP wall
clock) accompanies the modelled paper-scale series.
"""

import time

import numpy as np
import pytest

from repro.baselines.mstamp import mstamp
from repro.gpu.perfmodel import cpu_baseline_time, single_tile_timing
from repro.reporting import format_table

from _harness import emit


def _gpu_time(n, d, m, device):
    return single_tile_timing(n, n, d, m, device, 8).compute_total


@pytest.mark.benchmark(group="fig6")
def test_fig6_cross_generation(benchmark):
    headers = ["param", "CPU (s)", "V100 (s)", "A100 (s)", "V100 x", "A100 x"]

    def rows_for(sweep, fixed):
        rows = []
        for label, n, d, m in sweep:
            t_cpu = cpu_baseline_time(n, n, d)
            t_v = _gpu_time(n, d, m, "V100")
            t_a = _gpu_time(n, d, m, "A100")
            rows.append(
                [label, f"{t_cpu:.1f}", f"{t_v:.2f}", f"{t_a:.2f}",
                 f"{t_cpu / t_v:.1f}", f"{t_cpu / t_a:.1f}"]
            )
        return format_table(headers, rows, fixed)

    blocks = [
        rows_for(
            [(f"n=2^{e}", 2**e, 2**6, 2**6) for e in (12, 13, 14, 15, 16)],
            "Fig. 6 (left): time vs n (d=2^6, m=2^6)",
        ),
        rows_for(
            [(f"d=2^{e}", 2**16, 2**e, 2**6) for e in (3, 4, 5, 6)],
            "Fig. 6 (middle): time vs d (n=2^16, m=2^6)",
        ),
        rows_for(
            [(f"m=2^{e}", 2**16, 2**6, 2**e) for e in (3, 4, 5, 6)],
            "Fig. 6 (right): time vs m (n=2^16, d=2^6)",
        ),
    ]

    # Reduced-scale measured sanity point: wall-clock of the real CPU
    # reference here, for the record (absolute values are machine-bound).
    rng = np.random.default_rng(1)
    ref = rng.normal(size=(1024, 8))
    qry = rng.normal(size=(1024, 8))

    def run_cpu():
        return mstamp(ref, qry, 64)

    t0 = time.perf_counter()
    run_cpu()
    wall = time.perf_counter() - t0
    blocks.append(
        f"Measured mSTAMP wall clock at n=961 segments, d=8, m=64: {wall:.3f} s "
        f"(this machine, numpy)"
    )
    emit("fig6_cross_generation", "\n\n".join(blocks))

    benchmark.pedantic(run_cpu, rounds=1, iterations=1)

    # Headline anchors.
    t_cpu = cpu_baseline_time(2**16, 2**16, 2**6)
    assert t_cpu / _gpu_time(2**16, 2**6, 2**6, "V100") == pytest.approx(41.6, rel=0.15)
    assert t_cpu / _gpu_time(2**16, 2**6, 2**6, "A100") == pytest.approx(54.0, rel=0.15)
    # m-independence.
    assert _gpu_time(2**16, 2**6, 2**3, "A100") == pytest.approx(
        _gpu_time(2**16, 2**6, 2**6, "A100"), rel=0.05
    )
