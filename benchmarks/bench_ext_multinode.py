"""Extension bench — multi-node (MPI-style) deployment (Section VII).

Strong scaling of the tiled algorithm across simulated 4xA100 nodes, per
precision mode, including the communication phases an MPI deployment
adds.  The paper's expectation: the workload is not communication-bound,
so throughput keeps scaling while the problem is large enough.
"""

import pytest

from repro.extensions.multinode import ClusterSpec, model_multi_node
from repro.reporting import format_table

from _harness import emit

N, D, M = 2**17, 2**6, 2**6
NODES = (1, 2, 4, 8, 16)


@pytest.mark.benchmark(group="extensions")
def test_ext_multinode_scaling(benchmark):
    blocks = []
    effs = {}
    for mode in ("FP64", "FP16"):
        base = model_multi_node(N, D, M, ClusterSpec(1), mode=mode)
        rows = []
        for n_nodes in NODES:
            r = model_multi_node(N, D, M, ClusterSpec(n_nodes), mode=mode)
            eff = r.efficiency_vs(base)
            effs[(mode, n_nodes)] = eff
            rows.append(
                [
                    n_nodes,
                    n_nodes * 4,
                    f"{r.total_time:.2f}",
                    f"{r.broadcast_time + r.gather_time:.3f}",
                    f"{r.merge_time:.3f}",
                    f"{eff:.2%}",
                ]
            )
        blocks.append(
            format_table(
                ["nodes", "GPUs", "total (s)", "comm (s)", "merge (s)", "efficiency"],
                rows,
                f"Extension: multi-node strong scaling, {mode} "
                f"(n=2^17, d=2^6, 4xA100 nodes)",
            )
        )
    emit("ext_multinode", "\n\n".join(blocks))

    benchmark.pedantic(
        lambda: model_multi_node(N, D, M, ClusterSpec(4)), rounds=1, iterations=1
    )

    # Claims: >=2 nodes keep speeding things up through 8 nodes; FP64
    # efficiency at 4 nodes stays above 75%; communication is a small
    # fraction of the total at this problem size.
    assert effs[("FP64", 4)] > 0.75
    r8 = model_multi_node(N, D, M, ClusterSpec(8))
    r4 = model_multi_node(N, D, M, ClusterSpec(4))
    assert r8.total_time < r4.total_time
    assert (r8.broadcast_time + r8.gather_time) < 0.2 * r8.total_time
