"""Section I claim — reduced precision "can also reduce the memory
footprint, resulting in ... the ability to support larger problems".

Quantifies the device-memory footprint per precision mode (from the
allocator's high-water mark on an executed run, plus the analytic tile
footprint at paper scale) and the largest single-tile problem each mode
fits into one A100.
"""

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.planner import tile_memory_bytes
from repro.gpu import A100
from repro.gpu.simulator import GPUSimulator
from repro.reporting import format_table

from _harness import MODES, emit


def _largest_single_tile(mode, d, m):
    """Largest n_seg whose single tile fits 90% of an A100."""
    budget = 0.9 * A100.mem_capacity
    lo, hi = 1, 1 << 32
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if tile_memory_bytes(mid, mid, d, m, mode) <= budget:
            lo = mid
        else:
            hi = mid - 1
    return lo


@pytest.mark.benchmark(group="memory")
def test_memory_footprint(benchmark):
    rng = np.random.default_rng(0)
    ref = rng.normal(size=(768, 8))
    qry = rng.normal(size=(768, 8))

    rows = []
    high_water = {}
    for mode in MODES:
        # Executed run against the tracking allocator.
        from repro.kernels.layout import to_device_layout
        from repro.core.single_tile import run_tile
        from repro.precision import policy_for

        policy = policy_for(mode)
        sim = GPUSimulator("A100")
        gpu = sim.gpus[0]
        tr = gpu.memory.upload(to_device_layout(ref, policy.storage))
        tq = gpu.memory.upload(to_device_layout(qry, policy.storage))
        run_tile(tr.array, tq.array, 64, policy, RunConfig(mode=mode).launch)
        hw = gpu.memory.report()["high_water"]
        high_water[mode] = hw
        gpu.memory.free_all()

        analytic = tile_memory_bytes(2**16, 2**16, 64, 64, mode)
        largest = _largest_single_tile(mode, 64, 64)
        rows.append(
            [
                mode,
                f"{hw / 1024:.1f} KiB",
                f"{analytic / 1024**3:.2f} GiB",
                f"2^{int(np.log2(largest))}",
            ]
        )

    table = format_table(
        ["mode", "measured inputs (executed run)",
         "tile footprint @ n=2^16,d=2^6", "largest single-tile n on A100"],
        rows,
        "Memory footprint per precision mode",
    )
    emit("memory_footprint", table)

    benchmark.pedantic(
        lambda: tile_memory_bytes(2**16, 2**16, 64, 64, "FP16"),
        rounds=10,
        iterations=100,
    )

    # Claims: FP16 storage halves FP32 and quarters FP64; the largest
    # supportable problem grows as the dtype shrinks.
    assert high_water["FP16"] < high_water["FP32"] < high_water["FP64"]
    assert _largest_single_tile("FP16", 64, 64) > _largest_single_tile(
        "FP64", 64, 64
    )
