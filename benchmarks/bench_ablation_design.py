"""Ablation — the design choices Section III/IV motivates.

* **Cooperative bitonic sort vs batch sort**: the paper chooses a
  group-cooperative bitonic network over "the more intuitive batch-based
  parallelization, where only one thread performs a single sort", because
  the latter under-utilises the device.  We model the batch variant as a
  serial-sort-per-thread kernel (one thread sorts d elements in d*log d
  dependent steps at scalar ALU latency) and compare.
* **Stream count**: 1 vs 16 streams with many tiles — the overhead-hiding
  benefit of implicit synchronisation (Section IV).
* **Dimension-wise layout**: measured numpy wall clock of unit-stride vs
  strided reductions — the coalescing argument in host terms.
* **Kahan compensation**: FP16C precalc flops cost vs its accuracy gain.
"""

import time

import numpy as np
import pytest

from repro import RunConfig, model_multi_tile
from repro.gpu import A100
from repro.gpu.perfmodel import single_tile_timing
from repro.reporting import format_table

from _harness import emit


def _batch_sort_time(n, d, device):
    """Model the batch-based alternative: one thread per column serially
    sorts its d values (insertion sort: ~d^2/2 element accesses plus the
    d-step scan).  Each thread walks the dimension axis, whose elements
    are n apart in the dimension-wise layout, so a warp's 32 threads hit
    32 different cache lines per step: effective bandwidth collapses to
    ~1/10 of peak (one useful element per 64-byte sector, minus cache
    reuse).  This is the under-utilisation the paper's cooperative design
    avoids."""
    from repro.gpu.calibration import device_scale

    bytes_touched = float(n) * n * (d * d / 2.0 + d) * 8
    effective_bw = 0.1 * device.mem_bandwidth * device_scale(device.name)
    return bytes_touched / effective_bw


@pytest.mark.benchmark(group="ablation")
def test_ablation_sort_strategy(benchmark):
    n, m = 2**16, 2**6
    rows = []
    for d in (8, 16, 32, 64):
        coop = single_tile_timing(n, n, d, m, "A100", 8).kernels[
            "sort_&_incl_scan"
        ].total
        batch = _batch_sort_time(n, d, A100)
        rows.append([d, f"{coop:.2f}", f"{batch:.2f}", f"{batch / coop:.1f}x"])
    table = format_table(
        ["d", "cooperative bitonic (s)", "batch per-thread (s)", "bitonic advantage"],
        rows,
        "Ablation: cooperative bitonic vs batch-based sort (modelled, A100, n=2^16)",
    )
    emit("ablation_sort_strategy", table)
    benchmark.pedantic(lambda: _batch_sort_time(n, 64, A100), rounds=10, iterations=10)
    # The paper's choice must win at every dimensionality.
    for d in (8, 16, 32, 64):
        coop = single_tile_timing(n, n, d, m, "A100", 8).kernels[
            "sort_&_incl_scan"
        ].total
        assert _batch_sort_time(n, d, A100) > coop


@pytest.mark.benchmark(group="ablation")
def test_ablation_sort_strategy_executed(benchmark):
    """Executed twin of the analytic sort ablation: run the real batch
    kernel (repro.kernels.sort_scan_batch) against the cooperative one and
    compare recorded-cost-derived busy times plus result equality."""
    from repro.core.config import RunConfig
    from repro.core.single_tile import run_tile, tile_timing_from_output
    from repro.kernels.layout import to_device_layout
    from repro.precision import policy_for

    rng = np.random.default_rng(2)
    series = rng.normal(size=(600, 16))
    policy = policy_for("FP64")
    dev = to_device_layout(series, policy.storage)
    cfg = RunConfig()

    coop = run_tile(dev, dev, 32, policy, cfg.launch, exclusion_zone=8)
    batch = run_tile(
        dev, dev, 32, policy, cfg.launch, exclusion_zone=8, sort_strategy="batch"
    )
    t_coop = tile_timing_from_output(coop, policy, A100).kernels["sort_&_incl_scan"]
    t_batch = tile_timing_from_output(batch, policy, A100).kernels["sort_&_incl_scan"]

    table = format_table(
        ["strategy", "sort busy (modelled s)", "DRAM bytes", "results equal"],
        [
            ["cooperative bitonic", f"{t_coop.busy:.5f}",
             f"{coop.costs['sort_&_incl_scan'].bytes_dram:.3g}", "-"],
            ["batch per-thread", f"{t_batch.busy:.5f}",
             f"{batch.costs['sort_&_incl_scan'].bytes_dram:.3g}",
             str(bool(np.array_equal(coop.indices, batch.indices)))],
        ],
        "Ablation (executed): real batch kernel vs cooperative kernel "
        "(n=569 segments, d=16, FP64)",
    )
    emit("ablation_sort_strategy_executed", table)

    benchmark.pedantic(
        lambda: run_tile(dev[:, :200], dev[:, :200], 32, policy, cfg.launch,
                         sort_strategy="batch"),
        rounds=1,
        iterations=1,
    )

    assert np.array_equal(coop.indices, batch.indices)  # same math
    assert t_batch.busy > t_coop.busy  # the paper's design choice wins


@pytest.mark.benchmark(group="ablation")
def test_ablation_stream_count(benchmark):
    n, d, m = 2**16, 2**6, 2**6
    rows = []
    times = {}
    for n_streams in (1, 2, 4, 16):
        cfg = RunConfig(device="A100", n_tiles=64, n_streams=n_streams)
        t = model_multi_tile(n, d, m, cfg).modeled_time
        times[n_streams] = t
        rows.append([n_streams, f"{t:.2f}"])
    table = format_table(
        ["streams", "modelled time (s)"],
        rows,
        "Ablation: stream count with 64 tiles (A100, n=2^16, d=2^6)",
    )
    emit("ablation_stream_count", table)
    benchmark.pedantic(
        lambda: model_multi_tile(n, d, m, RunConfig(device="A100", n_tiles=64)),
        rounds=1,
        iterations=1,
    )
    assert times[16] <= times[1]


@pytest.mark.benchmark(group="ablation")
def test_ablation_data_layout(benchmark):
    # Host-measurable analogue of coalescing: summing the same number of
    # elements from a contiguous span (a dimension-wise row) vs a strided
    # walk (one dimension of a time-major array, elements d*8 bytes apart).
    d = 64
    flat = np.random.default_rng(0).normal(size=d * (1 << 16))

    def contiguous():
        return flat[: 1 << 16].sum()

    def strided():
        return flat[::d].sum()  # same element count, one cache line each

    reps = 20
    contiguous(), strided()  # warm caches fairly
    t0 = time.perf_counter()
    for _ in range(reps):
        contiguous()
    t_contig = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(reps):
        strided()
    t_strided = time.perf_counter() - t0
    table = format_table(
        ["access pattern", f"wall clock ({reps} reps)"],
        [
            ["dimension-wise (unit stride)", f"{t_contig:.4f} s"],
            ["time-major (strided)", f"{t_strided:.4f} s"],
        ],
        "Ablation: dimension-wise layout => unit-stride (coalesced) access",
    )
    emit("ablation_data_layout", table)
    benchmark.pedantic(contiguous, rounds=3, iterations=1)
    # Unit stride should never lose; tolerate noise on shared machines.
    assert t_contig <= t_strided * 1.5


@pytest.mark.benchmark(group="ablation")
def test_ablation_kahan_cost(benchmark):
    # FP16C's compensation quadruples precalc flops but precalc is a
    # negligible slice of the runtime — the paper's "does not result in
    # any significant overhead".
    n, d, m = 2**16, 2**6, 2**6
    plain = single_tile_timing(n, n, d, m, "A100", 2, precalc_itemsize=4)
    comp = single_tile_timing(
        n, n, d, m, "A100", 2, precalc_itemsize=4, compensated=True
    )
    overhead = comp.compute_total / plain.compute_total - 1.0
    table = format_table(
        ["variant", "precalc (s)", "total (s)"],
        [
            ["Mixed", f"{plain.kernels['precalculation'].total:.4f}",
             f"{plain.compute_total:.2f}"],
            ["FP16C (Kahan)", f"{comp.kernels['precalculation'].total:.4f}",
             f"{comp.compute_total:.2f}"],
        ],
        f"Ablation: Kahan compensation overhead = {overhead:.3%} of total",
    )
    emit("ablation_kahan_cost", table)
    benchmark.pedantic(
        lambda: single_tile_timing(n, n, d, m, "A100", 2, compensated=True),
        rounds=5,
        iterations=1,
    )
    assert overhead < 0.01  # under 1% end-to-end
