"""Symmetric self-join tiling bench — triangular grid vs the full grid.

With ``RunConfig.symmetric_tiles`` the planner keeps only the diagonal
and upper-triangular tiles of a self-join grid and reduces each
off-diagonal tile's distance panel twice (column-wise as usual, plus the
row-wise mirrored pass), so a 64-tile request executes 36 tiles instead
of 64 — a 1.78x ceiling on distance work.  This bench measures how much
of that ceiling survives end-to-end, and that the accuracy contract
holds while it does:

1. **Speed (the acceptance measurement)** — the 64-tile self-join
   reference job, n_seg = 8192, d = 8, m = 32 on the A100 launch, run
   through :func:`repro.core.multi_tile.compute_multi_tile` with the
   flag off vs on, in both backends (vector FP32 and tensor-core
   Mixed).  Acceptance: >= 1.7x in each backend.
2. **Accuracy** — profile error against the FP64 full-grid run,
   compared in correlation space (Eq. 1 inverted — the quantity the
   Section V-B bounds speak of) against
   :func:`~repro.precision.errors.streaming_qt_error_bound` /
   :func:`~repro.precision.errors.tc_gemm_error_bound`, plus exact
   index agreement between the mirrored and full grids.

Results are archived to ``benchmarks/results/symmetric_tiles.txt`` and,
for machine consumption, ``BENCH_symmetric_tiles.json`` at the repo
root.  ``REPRO_BENCH_SMOKE=1`` shrinks the problem and relaxes the
speedup floor for CI smoke runs (tiny tiles leave the per-tile mirror
reduce overhead unamortised).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile
from repro.precision.errors import (
    implied_correlation,
    streaming_qt_error_bound,
    tc_gemm_error_bound,
)
from repro.reporting import format_table

from _harness import emit

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: The reference job of the acceptance criterion: a 64-tile self-join,
#: n_seg = 8192 segments, d = 8, m = 32 on the A100 preset.
N_SEG = 1024 if SMOKE else 8192
D = 8
M = 32
N_TILES = 64
REPEATS = 1 if SMOKE else 2
#: CI smoke boxes run tiles too small to amortise the mirrored reduce;
#: the real floor is asserted at full scale.
MIN_SPEEDUP = 1.15 if SMOKE else 1.7

BACKENDS = (("numeric", "FP32"), ("tensor_core", "Mixed"))

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_symmetric_tiles.json"


def _series():
    rng = np.random.default_rng(0)
    t = np.arange(N_SEG + M - 1)[:, None]
    base = np.sin(2 * np.pi * t / (7.0 + np.arange(D)[None, :]))
    return base + 0.35 * rng.standard_normal(base.shape)


def _run(series, backend, mode, symmetric):
    cfg = RunConfig(
        mode=mode, n_tiles=N_TILES, backend=backend,
        symmetric_tiles=symmetric,
    )
    best, out = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        out = compute_multi_tile(series, None, M, cfg)
        best = min(best, time.perf_counter() - start)
    return out, best


@pytest.mark.benchmark(group="symmetric_tiles")
def test_symmetric_tiles_speedup_and_accuracy(benchmark):
    series = _series()
    rows = []
    record = {
        "reference_config": {"n_seg": N_SEG, "d": D, "m": M,
                             "n_tiles": N_TILES, "device": "A100",
                             "smoke": SMOKE},
        "backends": {},
        "min_speedup": MIN_SPEEDUP,
    }

    ref = compute_multi_tile(
        series, None, M, RunConfig(mode="FP64", n_tiles=N_TILES)
    )
    ref_corr = implied_correlation(ref.profile, M)

    for backend, mode in BACKENDS:
        full, t_full = _run(series, backend, mode, symmetric=False)
        sym, t_sym = _run(series, backend, mode, symmetric=True)
        speedup = t_full / t_sym
        assert full.n_tiles == N_TILES
        assert sym.n_tiles == 36  # g = 8 bands -> g(g+1)/2 tiles

        if backend == "tensor_core":
            bound = tc_gemm_error_bound(N_SEG, M, mode)
        else:
            bound = streaming_qt_error_bound(N_SEG, M, mode)
        err_full = float(np.max(np.abs(
            implied_correlation(full.profile.astype(np.float64), M) - ref_corr
        )))
        err_sym = float(np.max(np.abs(
            implied_correlation(sym.profile.astype(np.float64), M) - ref_corr
        )))
        agree = float(np.mean(sym.index == full.index))

        assert err_sym <= bound, (
            f"{backend} symmetric corr error {err_sym:.6f} above the "
            f"a-priori bound {bound:.6f}"
        )

        label = f"{backend} {mode}"
        rows.append([f"{label} full grid (64 tiles)",
                     f"{t_full * 1e3:9.1f} ms", "1.00x",
                     f"err {err_full:.2e}"])
        rows.append([f"{label} symmetric (36 tiles)",
                     f"{t_sym * 1e3:9.1f} ms", f"{speedup:.2f}x",
                     f"err {err_sym:.2e} <= {bound:.2e}"])
        rows.append([f"{label} index agreement", f"{agree:.4f}", "", ""])
        record["backends"][backend] = {
            "mode": mode, "full_s": t_full, "symmetric_s": t_sym,
            "speedup": speedup, "err_full": err_full, "err_sym": err_sym,
            "bound": bound, "index_agreement": agree, "repeats": REPEATS,
        }

    table = format_table(
        ["measurement", "time", "speedup", "accuracy"],
        rows,
        f"Symmetric self-join tiling, reference job n_seg={N_SEG}, d={D}, "
        f"m={M}, 64-tile request (A100 launch, best of {REPEATS})",
    )
    emit("symmetric_tiles", table)
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")

    benchmark.pedantic(
        lambda: _run(series, "numeric", "FP32", symmetric=True),
        rounds=1, iterations=1,
    )

    for backend, stats in record["backends"].items():
        assert stats["speedup"] >= MIN_SPEEDUP, (
            f"{backend} symmetric-tiling speedup {stats['speedup']:.2f}x "
            f"below the {MIN_SPEEDUP}x floor"
        )
