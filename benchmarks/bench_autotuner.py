"""Roofline autotuner bench — auto vs default vs exhaustive search.

The autotuner (``RunConfig.auto()`` / :class:`repro.autotune.AutoTuner`)
predicts host wall time for every candidate configuration of a job —
``row_block`` x ``parallel_workers`` x tiling x precalc strategy — from
measured calibration constants and picks the fastest.  Tuned knobs are
all cache-key-excluded performance parameters, so the profile is pinned
bit-identical to the default config's (``tests/test_autotune.py``); the
only question is how close the *predicted* winner is to the *measured*
one.

Three measurements per job on a small shape grid:

1. **default** — the shipped constructor defaults, timed end to end;
2. **auto** — ``matrix_profile(..., auto=True)`` with a measured
   calibration profile, timed end to end (includes the planner pass);
3. **exhaustive** — every viable candidate the tuner considered, each
   timed, keeping the measured optimum.

Acceptance (the ROADMAP bar): the tuner's chosen candidate is never
more than 10% slower than the exhaustive-search optimum, measured
within the same loop so timing noise hits both sides equally.

Results are archived to ``benchmarks/results/autotuner.txt`` and, for
machine consumption, ``BENCH_autotuner.json`` at the repo root.
``REPRO_BENCH_SMOKE=1`` shrinks the grid and relaxes the bar for CI
smoke runs on noisy single-core boxes.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.autotune import AutoTuner
from repro.core.api import matrix_profile
from repro.gpu.calibration import measure_host_profile
from repro.reporting import format_table

from _harness import emit

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

REPEATS = 2 if SMOKE else 3
#: The acceptance bar: measured time of the tuner's pick vs the measured
#: exhaustive optimum over the same candidate set.  CI smoke boxes are
#: noisy single-core runners; the 1.10 bar is asserted at full scale.
MAX_OVERHEAD = 1.5 if SMOKE else 1.10

#: (n_seg, d, m, mode) job grid.
JOBS = (
    [(192, 4, 32, "FP32"), (160, 8, 24, "FP16")]
    if SMOKE
    else [
        (256, 4, 32, "FP32"),
        (384, 2, 48, "FP64"),
        (256, 8, 24, "FP16"),
        (320, 4, 64, "Mixed"),
    ]
)

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_autotuner.json"


def _series(n_seg, d, m, seed=31):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n_seg + m - 1, d)).cumsum(axis=0)


def _timed(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


@pytest.mark.benchmark(group="autotuner")
def test_autotuner_vs_exhaustive(benchmark):
    calibration = measure_host_profile(n_seg=96 if SMOKE else 160)
    tuner = AutoTuner(device="A100", calibration=calibration)
    rows = []
    record = {
        "smoke": SMOKE,
        "repeats": REPEATS,
        "max_overhead": MAX_OVERHEAD,
        "calibration_source": calibration.source,
        "jobs": [],
    }
    worst_overhead = 0.0

    for n_seg, d, m, mode in JOBS:
        series = _series(n_seg, d, m)
        label = f"{mode} n={n_seg} d={d} m={m}"

        default_result, t_default = _timed(
            lambda: matrix_profile(series, m=m, mode=mode)
        )
        auto_result, t_auto_e2e = _timed(
            lambda: matrix_profile(series, m=m, mode=mode, auto=True,
                                   tuner=tuner)
        )
        # The bit-identity contract: no error target, identical output.
        assert np.array_equal(
            auto_result.profile, default_result.profile, equal_nan=True
        )
        assert np.array_equal(auto_result.index, default_result.index)

        # Exhaustive search over the tuner's own candidate set, timing
        # the chosen candidate inside the same loop so both sides of the
        # acceptance ratio see the same machine state.
        decision = tuner.tune(n_seg, n_seg, d, m, mode=mode)
        t_best = float("inf")
        t_chosen = None
        best_candidate = None
        for cand in decision.candidates:
            if cand.rejected:
                continue
            _, t_cand = _timed(
                lambda c=cand: matrix_profile(
                    series, m=m, mode=mode, n_tiles=c.n_tiles,
                    row_block=c.row_block,
                    parallel_workers=c.parallel_workers,
                )
            )
            if t_cand < t_best:
                t_best, best_candidate = t_cand, cand
            if cand == decision.chosen:
                t_chosen = t_cand
        overhead = t_chosen / t_best
        worst_overhead = max(worst_overhead, overhead)

        rows.append([label, f"{t_default * 1e3:8.1f}",
                     f"{t_auto_e2e * 1e3:8.1f}", f"{t_best * 1e3:8.1f}",
                     f"rb={decision.chosen.row_block} "
                     f"w={decision.chosen.parallel_workers}",
                     f"rb={best_candidate.row_block} "
                     f"w={best_candidate.parallel_workers}",
                     f"{overhead:.3f}x"])
        record["jobs"].append({
            "n_seg": n_seg, "d": d, "m": m, "mode": mode,
            "default_s": t_default,
            "auto_end_to_end_s": t_auto_e2e,
            "exhaustive_best_s": t_best,
            "chosen_s": t_chosen,
            "chosen": {"row_block": decision.chosen.row_block,
                       "parallel_workers": decision.chosen.parallel_workers,
                       "n_tiles": decision.chosen.n_tiles},
            "optimum": {"row_block": best_candidate.row_block,
                        "parallel_workers": best_candidate.parallel_workers,
                        "n_tiles": best_candidate.n_tiles},
            "candidates_searched": sum(
                1 for c in decision.candidates if not c.rejected
            ),
            "overhead_vs_optimum": overhead,
            "bit_identical_to_default": True,
        })

    record["worst_overhead"] = worst_overhead
    table = format_table(
        ["job", "default ms", "auto ms", "best ms", "chosen", "optimum",
         "vs opt"],
        rows,
        f"Autotuner vs exhaustive search (best of {REPEATS}, "
        f"bar {MAX_OVERHEAD:.2f}x)",
    )
    emit("autotuner", table)
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")

    n0, d0, m0, mode0 = JOBS[0]
    s0 = _series(n0, d0, m0)
    benchmark.pedantic(
        lambda: matrix_profile(s0, m=m0, mode=mode0, auto=True, tuner=tuner),
        rounds=1, iterations=1,
    )

    assert worst_overhead <= MAX_OVERHEAD, (
        f"autotuned config {worst_overhead:.3f}x slower than the "
        f"exhaustive optimum (bar {MAX_OVERHEAD:.2f}x)"
    )
