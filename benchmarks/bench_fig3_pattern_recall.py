"""Fig. 3 — practical accuracy (R_embedded) of pattern detection for the
eight primitive injected patterns P0-P7, per precision mode.

Paper series: every mode detects every pattern at 100%, except ~98% for
two patterns (P2, P3 in the paper's numbering) under the FP16-family
modes.  We embed each pattern several times and report per-pattern recall.
"""

import pytest

from repro import matrix_profile
from repro.datasets import PATTERN_NAMES, make_stress_dataset
from repro.metrics import embedded_motif_recall
from repro.reporting import format_table

from _harness import MODES, emit


@pytest.mark.benchmark(group="fig3")
def test_fig3_pattern_recall(benchmark):
    repeats = 3  # embeddings per pattern
    ds = make_stress_dataset(
        n=4096, d=4, m=32, motifs_per_pattern=repeats, amplitude=4.0, seed=5
    )
    results = {
        mode: matrix_profile(ds.reference, ds.query, m=ds.m, mode=mode)
        for mode in MODES
    }

    rows = []
    for name in PATTERN_NAMES:
        motifs = [mo for mo in ds.motifs if mo.pattern == name]
        row = [name]
        for mode in MODES:
            row.append(embedded_motif_recall(results[mode].index, motifs, k=1))
        rows.append(row)
    # Aggregate row.
    rows.append(
        ["ALL"]
        + [embedded_motif_recall(results[mode].index, ds.motifs, k=1) for mode in MODES]
    )

    table = format_table(
        ["pattern"] + [f"{m} (%)" for m in MODES],
        rows,
        "Fig. 3: recall for embedded motif detection, per pattern and mode",
    )
    emit("fig3_pattern_recall", table)

    benchmark.pedantic(
        lambda: embedded_motif_recall(results["FP16"].index, ds.motifs, k=1),
        rounds=3,
        iterations=1,
    )

    # Paper claim: FP64/FP32 at 100%, FP16-family >= 95% overall.
    assert rows[-1][1] == 100.0  # FP64
    assert rows[-1][2] == 100.0  # FP32
    for col in (3, 4, 5):  # FP16, Mixed, FP16C
        assert rows[-1][col] >= 90.0
