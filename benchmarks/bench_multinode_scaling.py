"""Multi-node weak scaling + node-storm recovery overhead (Section VII).

The paper's scaling study (Fig. 5 and the DGX-1/Raven discussions) shows
the tiled algorithm's hallmark shape: near-flat weak scaling — grow the
problem with the fleet and the wall time barely moves — with parallel
efficiency eroding slowly as the communication and merge phases grow
with the fleet.  This bench reproduces that shape over the sharded
cluster tier at 10-100x the paper's tile counts: the per-GPU tile count
is 10x the paper's 4-per-GPU oversubscription guidance, and the largest
fleet (16 nodes x 4 GPUs = 2560 tiles) runs ~100x the paper's largest
DGX-1 tiling.  Times are modelled (AnalyticBackend) — the same pricing
the fault-free dispatcher shares with ``model_multi_node`` — so the
paper-scale problems stay tractable in pure Python.

Measurements:

1. **Weak scaling** — per fleet size, ``n`` grows as ``sqrt(nodes)``
   (constant n^2 work per node); weak efficiency = T(1) / T(nodes).
   Acceptance: efficiency at the largest fleet stays above 0.6 and
   communication stays a small fraction of the total.
2. **10%-node-storm recovery overhead** — kill 10% of a 10-node fleet
   mid-run; lost tiles re-shard to the survivors after the heartbeat
   detector fires.  Acceptance: zero dropped tiles and total time within
   1.5x of the fault-free run (the headline recovery-overhead claim).

Results are archived to ``benchmarks/results/multinode_scaling.txt`` and
``BENCH_multinode_scaling.json`` at the repo root.  ``REPRO_BENCH_SMOKE=1``
shrinks the fleet curve for CI smoke runs.
"""

import json
import math
import os
from pathlib import Path

import pytest

from repro.cluster import ClusterDispatcher, ClusterSpec, NodeFaultPlan
from repro.core.config import RunConfig
from repro.engine.plan import JobSpec
from repro.reporting import format_table

from _harness import emit

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Weak-scaling base problem: n segments at one node (paper scale).
BASE_N = 2**14 if SMOKE else 2**16
D, M = 64, 64
GPUS_PER_NODE = 4
#: 10x the paper's 4-tiles-per-GPU oversubscription guidance.
TILES_PER_GPU = 40
NODES = (1, 2, 4, 8) if SMOKE else (1, 2, 4, 8, 16)

#: Storm scenario: 10% of a ten-node fleet dies mid-run.  Always at the
#: full paper scale — the overhead ratio compares a fixed-cost heartbeat
#: detection latency against compute, so shrinking the problem would
#: only measure the detector, not the recovery (modelled times keep the
#: full scale cheap even in smoke runs).
STORM_BASE_N = 2**16
STORM_NODES = 10
STORM_KILL = (3,)
MAX_STORM_OVERHEAD = 1.5
MIN_WEAK_EFFICIENCY = 0.6

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_multinode_scaling.json"


def _weak_spec(n_nodes: int, cluster: ClusterSpec, base_n: int = None) -> JobSpec:
    n = int((base_n or BASE_N) * math.sqrt(n_nodes))
    config = RunConfig(mode="FP64", device=cluster.device_spec)
    return JobSpec.modeled(n, n, D, M, config)


def _run(cluster: ClusterSpec, node_faults=None, base_n: int = None):
    spec = _weak_spec(cluster.n_nodes, cluster, base_n)
    dispatcher = ClusterDispatcher(cluster, node_faults=node_faults)
    return dispatcher.run(
        spec, n_tiles=TILES_PER_GPU * cluster.total_gpus
    )


@pytest.mark.benchmark(group="multinode_scaling")
def test_multinode_weak_scaling_and_storm(benchmark):
    record = {
        "reference_config": {
            "base_n": BASE_N, "d": D, "m": M,
            "gpus_per_node": GPUS_PER_NODE,
            "tiles_per_gpu": TILES_PER_GPU,
            "nodes": list(NODES), "smoke": SMOKE,
        },
        "weak_scaling": [],
        "storm": {},
    }

    # -- weak scaling curve ----------------------------------------------
    rows = []
    runs = {}
    for n_nodes in NODES:
        cluster = ClusterSpec(n_nodes=n_nodes, gpus_per_node=GPUS_PER_NODE)
        runs[n_nodes] = _run(cluster)
    base = runs[NODES[0]]
    efficiencies = {}
    for n_nodes in NODES:
        r = runs[n_nodes]
        eff = base.total_time / r.total_time
        efficiencies[n_nodes] = eff
        comm = r.broadcast_time + r.gather_time
        rows.append([
            n_nodes,
            n_nodes * GPUS_PER_NODE,
            TILES_PER_GPU * n_nodes * GPUS_PER_NODE,
            f"{int(BASE_N * math.sqrt(n_nodes))}",
            f"{r.total_time:.2f}",
            f"{comm:.3f}",
            f"{r.merge_time:.3f}",
            f"{eff:.2%}",
        ])
        record["weak_scaling"].append({
            "nodes": n_nodes, "gpus": n_nodes * GPUS_PER_NODE,
            "n_tiles": TILES_PER_GPU * n_nodes * GPUS_PER_NODE,
            "n_seg": int(BASE_N * math.sqrt(n_nodes)),
            "total_s": r.total_time, "comm_s": comm,
            "merge_s": r.merge_time, "weak_efficiency": eff,
        })
    scaling_table = format_table(
        ["nodes", "GPUs", "tiles", "n", "total (s)", "comm (s)",
         "merge (s)", "weak eff"],
        rows,
        f"Multi-node weak scaling, FP64 (n grows as sqrt(nodes) from "
        f"{BASE_N}, d={D}, {GPUS_PER_NODE}xA100 nodes, "
        f"{TILES_PER_GPU} tiles/GPU)",
    )

    # -- 10% node storm: recovery overhead -------------------------------
    storm_cluster = ClusterSpec(
        n_nodes=STORM_NODES, gpus_per_node=GPUS_PER_NODE
    )
    clean = _run(storm_cluster, base_n=STORM_BASE_N)
    storm = _run(
        storm_cluster,
        node_faults=NodeFaultPlan(seed=5, crash_nodes=STORM_KILL),
        base_n=STORM_BASE_N,
    )
    overhead = storm.total_time / clean.total_time
    storm_rows = [
        ["fault-free", f"{clean.total_time:.2f}", "-", "-", "1.00x"],
        [
            f"kill {len(STORM_KILL)}/{STORM_NODES} nodes",
            f"{storm.total_time:.2f}",
            f"{storm.recovery_overhead:.2f}",
            storm.tiles_resharded,
            f"{overhead:.2f}x",
        ],
    ]
    storm_table = format_table(
        ["scenario", "total (s)", "recovery (s)", "re-sharded", "overhead"],
        storm_rows,
        f"10% node storm on {STORM_NODES} nodes (heartbeat detection + "
        f"re-shard to survivors)",
    )
    record["storm"] = {
        "nodes": STORM_NODES, "killed": list(STORM_KILL),
        "clean_total_s": clean.total_time,
        "storm_total_s": storm.total_time,
        "recovery_overhead_s": storm.recovery_overhead,
        "tiles_resharded": storm.tiles_resharded,
        "dropped_tiles": storm.dropped_tiles,
        "overhead_ratio": overhead,
    }

    emit("multinode_scaling", scaling_table + "\n\n" + storm_table)
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")

    benchmark.pedantic(
        lambda: _run(ClusterSpec(n_nodes=2, gpus_per_node=GPUS_PER_NODE)),
        rounds=1, iterations=1,
    )

    # Claims.  Weak scaling reproduces the paper's shape: efficiency
    # starts at 1 and erodes monotonically (comm + merge grow with the
    # fleet) but stays high; the storm recovers every lost tile within
    # the overhead budget.
    effs = [efficiencies[n] for n in NODES]
    assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))
    assert efficiencies[NODES[-1]] >= MIN_WEAK_EFFICIENCY
    largest = runs[NODES[-1]]
    assert (largest.broadcast_time + largest.gather_time) < 0.1 * largest.total_time
    assert storm.dropped_tiles == 0
    assert storm.tiles_resharded > 0
    assert overhead <= MAX_STORM_OVERHEAD
