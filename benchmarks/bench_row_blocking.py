"""Row-blocked kernel execution bench — per-row vs blocked vs parallel.

The row-blocked main loop (``RunConfig.row_block``) is a pure host-side
optimisation: ``dist_calc`` keeps the sequential Eq. (1) recurrence but
fills B consecutive row planes into one workspace, and the
column-independent sort/scan/update stages then run once per block.  The
output — profile, indices, per-kernel costs, modelled timeline — is
bit-for-bit that of the per-row emulation (``tests/test_row_blocking.py``
pins this), so the only thing to measure is wall clock.

Two measurements:

1. **Kernel level (the reference config)** — one multi-dimensional FP16
   tile, n_seg = 256, d = 8, m = 32, timed through
   :func:`repro.engine.backends.run_tile` at ``row_block`` 1 vs the
   default 64, for FP16 and FP64.  Acceptance: >= 3x for the FP16 tile.
2. **Engine level** — a 4-tile FP16 self-join through
   :func:`~repro.core.multi_tile.compute_multi_tile`, serial per-row vs
   serial blocked vs blocked with ``parallel_workers`` tile threads.
   The per-tile precalc and merge overhead is shared by every variant,
   so the end-to-end ratio is lower than the kernel-level one; on a
   single-core host the parallel row measures dispatch overhead only
   (the workers exist for multi-core hosts; determinism is pinned by
   the tests either way).

Results are archived to ``benchmarks/results/row_blocking.txt`` and, for
machine consumption, ``BENCH_row_blocking.json`` at the repo root.
``REPRO_BENCH_SMOKE=1`` shrinks the problem and relaxes the speedup
floor for CI smoke runs.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile
from repro.engine.backends import run_tile
from repro.kernels.layout import to_device_layout
from repro.reporting import format_table

from _harness import emit

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: The reference config of the acceptance criterion: one multi-dim FP16
#: tile.  n_seg = 256 reference segments (n = n_seg + m - 1 samples).
N_SEG = 128 if SMOKE else 256
D = 8
M = 32
BLOCK = RunConfig().row_block  # the shipped default (64)
REPEATS = 2 if SMOKE else 3
#: CI smoke boxes are noisy single-core runners; the real floor is
#: asserted at full scale.
MIN_SPEEDUP_FP16 = 1.5 if SMOKE else 3.0

ENGINE_N = 384 if SMOKE else 640
ENGINE_TILES = 4
WORKERS = 4

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_row_blocking.json"


def _series(n, d, seed=11):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d)).cumsum(axis=0)


def _timed(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _time_tile(mode, row_block):
    cfg = RunConfig(mode=mode, row_block=row_block)
    ref = _series(N_SEG + M - 1, D)
    tr = to_device_layout(ref, cfg.policy.storage)

    def run():
        return run_tile(
            tr, tr, M, cfg.policy, cfg.launch,
            exclusion_zone=M // 4, row_block=row_block,
        )
    out, best = _timed(run)
    return out, best


@pytest.mark.benchmark(group="row_blocking")
def test_row_blocking_speedup(benchmark):
    rows = []
    record = {
        "reference_config": {"n_seg": N_SEG, "d": D, "m": M,
                             "row_block": BLOCK, "smoke": SMOKE},
        "kernel_level": {},
        "engine_level": {},
    }

    # -- kernel level: the acceptance measurement ------------------------
    fp16_ratio = None
    for mode in ("FP16", "FP64"):
        out_1, t_1 = _time_tile(mode, 1)
        out_b, t_b = _time_tile(mode, BLOCK)
        assert np.array_equal(
            out_b.profile.view(np.uint8), out_1.profile.view(np.uint8)
        )
        assert np.array_equal(out_b.indices, out_1.indices)
        ratio = t_1 / t_b
        if mode == "FP16":
            fp16_ratio = ratio
        rows.append([f"tile {mode} per-row", f"{t_1 * 1e3:9.1f}", "1.00x"])
        rows.append([f"tile {mode} block={BLOCK}", f"{t_b * 1e3:9.1f}",
                     f"{ratio:.2f}x"])
        record["kernel_level"][mode] = {
            "per_row_s": t_1, "blocked_s": t_b, "speedup": ratio,
        }

    # -- engine level: multi-tile, serial vs parallel workers ------------
    series = _series(ENGINE_N, D, seed=23)
    base_cfg = dict(mode="FP16", n_tiles=ENGINE_TILES)
    r_row, t_row = _timed(
        lambda: compute_multi_tile(
            series, None, M, RunConfig(row_block=1, **base_cfg))
    )
    r_blk, t_blk = _timed(
        lambda: compute_multi_tile(series, None, M, RunConfig(**base_cfg))
    )
    r_par, t_par = _timed(
        lambda: compute_multi_tile(
            series, None, M, RunConfig(**base_cfg),
            parallel_workers=WORKERS)
    )
    assert np.array_equal(r_blk.profile, r_row.profile)
    assert np.array_equal(r_blk.index, r_row.index)
    assert np.array_equal(r_par.profile, r_blk.profile)
    assert np.array_equal(r_par.index, r_blk.index)
    rows.append(["engine FP16 per-row", f"{t_row * 1e3:9.1f}", "1.00x"])
    rows.append(["engine FP16 blocked", f"{t_blk * 1e3:9.1f}",
                 f"{t_row / t_blk:.2f}x"])
    rows.append([f"engine FP16 blocked +{WORKERS} workers",
                 f"{t_par * 1e3:9.1f}", f"{t_row / t_par:.2f}x"])
    record["engine_level"] = {
        "n": ENGINE_N, "n_tiles": ENGINE_TILES, "workers": WORKERS,
        "per_row_s": t_row, "blocked_s": t_blk, "parallel_s": t_par,
        "host_cpus": os.cpu_count(),
    }

    table = format_table(
        ["configuration", "best (ms)", "speedup"],
        rows,
        f"Row-blocked execution, reference tile n_seg={N_SEG}, d={D}, "
        f"m={M} (block={BLOCK}, best of {REPEATS})",
    )
    emit("row_blocking", table)
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")

    benchmark.pedantic(lambda: _time_tile("FP16", BLOCK), rounds=1,
                       iterations=1)

    assert fp16_ratio >= MIN_SPEEDUP_FP16, (
        f"FP16 reference tile speedup {fp16_ratio:.2f}x below the "
        f"{MIN_SPEEDUP_FP16}x floor"
    )
