"""Ablation — the Section V-B error analysis against measured errors.

Validates the two levers the paper identifies:

* machine epsilon: measured FP16/FP32 profile errors must straddle in the
  order the eps-driven bound predicts, and the bound must upper-bound the
  measured QT error;
* tile size: the measured FP16 error must not grow once tiling caps the
  recurrence length, and `tile_edge_for_target_error` must give a tile
  edge whose measured error meets the target it was derived for.
"""

import numpy as np
import pytest

from repro import matrix_profile
from repro.datasets import make_stress_dataset
from repro.precision import streaming_qt_error_bound, tile_edge_for_target_error
from repro.reporting import format_table

from _harness import emit


@pytest.mark.benchmark(group="ablation")
def test_ablation_error_model(benchmark):
    m = 32
    ds = make_stress_dataset(n=1600, d=4, m=m, amplitude=4.0, seed=23)
    ref = matrix_profile(ds.reference, ds.query, m=m, mode="FP64")
    n_rows = ref.n_q_seg

    rows = []
    measured = {}
    for mode in ("FP32", "FP16", "Mixed", "FP16C"):
        r = matrix_profile(ds.reference, ds.query, m=m, mode=mode)
        err = float(
            np.mean(np.abs(r.profile - ref.profile) / np.maximum(ref.profile, 1e-6))
        )
        bound = streaming_qt_error_bound(n_rows, m, mode)
        measured[mode] = err
        rows.append([mode, f"{err:.2e}", f"{bound:.2e}",
                     "yes" if err <= bound else "no"])
    blocks = [
        format_table(
            ["mode", "measured rel. error", "bound (e ~ n*eps)", "within bound"],
            rows,
            f"Error model vs measurement (untiled, {n_rows} streaming rows)",
        )
    ]

    # Tile-size lever: bound and measurement vs tile count.
    tile_rows = []
    for n_tiles in (1, 16, 64):
        edge = int(np.ceil(n_rows / np.sqrt(n_tiles)))
        bound = streaming_qt_error_bound(edge, m, "FP16")
        r = matrix_profile(ds.reference, ds.query, m=m, mode="FP16", n_tiles=n_tiles)
        err = float(
            np.mean(np.abs(r.profile - ref.profile) / np.maximum(ref.profile, 1e-6))
        )
        tile_rows.append([n_tiles, edge, f"{bound:.2e}", f"{err:.2e}"])
    blocks.append(
        format_table(
            ["tiles", "tile edge", "FP16 bound", "FP16 measured"],
            tile_rows,
            "Tile size bounds the propagation (FP16)",
        )
    )

    # The planner: pick tiles for a 5% target and verify it is met.
    target = 0.05
    edge = tile_edge_for_target_error(target, m, "FP16")
    needed_tiles = max(1, int(np.ceil(n_rows / edge)) ** 2)
    r = matrix_profile(
        ds.reference, ds.query, m=m, mode="FP16", n_tiles=min(needed_tiles, 256)
    )
    planned_err = float(
        np.mean(np.abs(r.profile - ref.profile) / np.maximum(ref.profile, 1e-6))
    )
    blocks.append(
        f"Planner: target {target:.0%} => tile edge {edge} => {needed_tiles} tiles; "
        f"measured error {planned_err:.2%}"
    )
    emit("ablation_error_model", "\n\n".join(blocks))

    benchmark.pedantic(
        lambda: streaming_qt_error_bound(n_rows, m, "FP16"), rounds=10, iterations=10
    )

    # Claims: bounds hold; eps ordering respected; planner target met.
    assert measured["FP32"] < measured["FP16"]
    for mode in ("FP32", "FP16", "Mixed", "FP16C"):
        assert measured[mode] <= streaming_qt_error_bound(n_rows, m, mode)
    assert planned_err <= target
