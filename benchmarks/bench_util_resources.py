"""Section V-C (resource utilisation) — which roofline resource binds each
kernel, and the achieved throughput fractions, per precision mode.

Paper observations: all kernels memory-bound; in FP64 ``dist_calc`` and
``update_mat_prof`` run at >80% DRAM throughput and ``sort_&_incl_scan``
at >80% L1/TEX with ~70% SM; the achieved fractions drop with narrower
types (60%/30% DRAM for FP32/FP16 dist_calc etc.), which is exactly why
reduced precision yields sub-linear speedup.
"""

import pytest

from repro.gpu import A100
from repro.gpu.calibration import (
    DRAM_EFFICIENCY,
    L1_EFFICIENCY,
    SM_EFFICIENCY,
    device_scale,
)
from repro.gpu.perfmodel import kernel_time, single_tile_costs
from repro.gpu.kernel import LaunchConfig
from repro.precision import policy_for
from repro.reporting import format_table

from _harness import MODES, emit

KERNELS = ("dist_calc", "sort_&_incl_scan", "update_mat_prof")


def _binding_resource(cost, device, itemsize):
    scale = device_scale(device.name)
    terms = {
        "DRAM": cost.bytes_dram
        / (DRAM_EFFICIENCY[cost.name][itemsize] * device.mem_bandwidth * scale),
        "L2": cost.bytes_l2 / (0.7 * device.l2_bandwidth * scale),
        "L1/TEX": cost.bytes_l1
        / (L1_EFFICIENCY[itemsize] * device.l1_bandwidth * scale)
        if cost.bytes_l1
        else 0.0,
        "SM": cost.flops / (SM_EFFICIENCY * device.peak_flops(itemsize)),
    }
    bound = max(terms, key=terms.get)
    return bound, terms


@pytest.mark.benchmark(group="util")
def test_util_resources(benchmark):
    cfg = LaunchConfig.tuned_for(A100)
    rows = []
    for mode in MODES:
        policy = policy_for(mode)
        costs = single_tile_costs(
            2**16, 2**16, 2**6, 2**6, policy.itemsize, cfg,
            precalc_itemsize=policy.precalc.itemsize,
            compensated=policy.compensated,
        )
        for name in KERNELS:
            bound, terms = _binding_resource(costs[name], A100, policy.itemsize)
            t = kernel_time(costs[name], A100, policy.itemsize)
            dram_frac = DRAM_EFFICIENCY[name][policy.itemsize]
            l1_frac = L1_EFFICIENCY[policy.itemsize]
            rows.append(
                [
                    mode,
                    name,
                    bound,
                    f"{dram_frac:.0%}",
                    f"{l1_frac:.0%}" if name == "sort_&_incl_scan" else "-",
                    f"{t.busy:.2f}",
                ]
            )

    table = format_table(
        ["mode", "kernel", "bound by", "DRAM util", "L1 util", "busy (s)"],
        rows,
        "Section V-C: binding resource and achieved-throughput fractions "
        "(A100, n=2^16, d=2^6)",
    )
    emit("util_resources", table)

    benchmark.pedantic(
        lambda: single_tile_costs(2**16, 2**16, 2**6, 2**6, 8, cfg),
        rounds=3,
        iterations=1,
    )

    # Paper claims: every kernel is memory-bound (never SM-bound) and
    # dist_calc binds on DRAM in FP64.
    policy = policy_for("FP64")
    costs = single_tile_costs(2**16, 2**16, 2**6, 2**6, 8, cfg)
    for name in KERNELS:
        bound, _ = _binding_resource(costs[name], A100, 8)
        assert bound != "SM", f"{name} must be memory-bound"
    assert _binding_resource(costs["dist_calc"], A100, 8)[0] == "DRAM"
    assert _binding_resource(costs["sort_&_incl_scan"], A100, 8)[0] == "L1/TEX"
