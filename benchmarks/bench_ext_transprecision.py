"""Extension bench — TF32 and BFLOAT16 modes (Section VII future work).

Regenerates a Fig. 2-style accuracy comparison with the transprecision
formats inserted between FP32 and FP16, plus modelled A100 times (TF32
moves FP32-sized data; BF16 moves FP16-sized data).
"""

import pytest

from repro import matrix_profile
from repro.baselines.mstamp import mstamp
from repro.datasets import make_stress_dataset
from repro.extensions.transprecision import (
    BF16,
    TF32,
    transprecision_itemsize,
    transprecision_matrix_profile,
)
from repro.gpu.perfmodel import single_tile_timing
from repro.metrics import recall_rate, relative_accuracy
from repro.reporting import format_table

from _harness import emit


@pytest.mark.benchmark(group="extensions")
def test_ext_transprecision(benchmark):
    ds = make_stress_dataset(n=700, d=4, m=32, amplitude=4.0, seed=12)
    p64, i64 = mstamp(ds.reference, ds.query, ds.m)

    rows = []
    accs = {}
    # Native modes through the main pipeline.
    for mode in ("FP64", "FP32", "FP16"):
        r = matrix_profile(ds.reference, ds.query, m=ds.m, mode=mode)
        accs[mode] = relative_accuracy(r.profile, p64)
        rows.append(
            [mode, f"{accs[mode]:.2f}%", f"{recall_rate(r.index, i64):.1f}%"]
        )
    # Transprecision formats through the soft-rounded evaluator.
    for fmt in (TF32, BF16):
        p, i = transprecision_matrix_profile(ds.reference, ds.query, ds.m, fmt)
        accs[fmt.name] = relative_accuracy(p, p64)
        rows.append(
            [fmt.name, f"{accs[fmt.name]:.2f}%", f"{recall_rate(i, i64):.1f}%"]
        )

    time_rows = []
    for label, itemsize in (
        ("FP64", 8),
        ("FP32", 4),
        ("TF32", transprecision_itemsize(TF32)),
        ("BF16", transprecision_itemsize(BF16)),
        ("FP16", 2),
    ):
        t = single_tile_timing(2**16, 2**16, 2**6, 2**6, "A100", itemsize)
        time_rows.append([label, f"{t.compute_total:.2f}"])

    blocks = [
        format_table(
            ["format", "rel. accuracy A", "recall R"],
            rows,
            "Extension: transprecision accuracy (executed, reduced scale)",
        ),
        format_table(
            ["format", "modelled A100 time (s)"],
            time_rows,
            "Extension: modelled paper-scale time by storage width",
        ),
    ]
    emit("ext_transprecision", "\n\n".join(blocks))

    benchmark.pedantic(
        lambda: transprecision_matrix_profile(
            ds.reference[:300], ds.query[:300], ds.m, TF32
        ),
        rounds=1,
        iterations=1,
    )

    # Expected ordering: FP64 >= FP32 >= TF32 >= BF16, and TF32 >= FP16
    # (same significand, wider exponent).
    assert accs["FP32"] >= accs["TF32"] - 0.5
    assert accs["TF32"] >= accs["BF16"] - 0.5
    assert accs["TF32"] >= accs["FP16"] - 0.5
