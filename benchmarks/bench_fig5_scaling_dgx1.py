"""Fig. 5 — execution time and parallel efficiency of the multi-tile
implementation with 16 tiles on the DGX-1 (8x V100), for all precision
modes, plus the per-kernel breakdown of the single-GPU run.

Paper series: near-linear scaling; >90% efficiency for FP64 at 1/2/4/8
GPUs; ~80% for the reduced-precision modes; efficiency dips at odd GPU
counts because 16 tiles don't divide evenly.
"""

import pytest

from repro import RunConfig, model_multi_tile
from repro.reporting import format_table

from _harness import MODES, emit

N, D, M = 2**16, 2**8, 2**6


def _series(mode):
    rows = []
    base = None
    for n_gpus in range(1, 9):
        cfg = RunConfig(mode=mode, device="V100", n_tiles=16, n_gpus=n_gpus)
        r = model_multi_tile(N, D, M, cfg)
        if base is None:
            base = r.modeled_time
        rows.append((n_gpus, r.modeled_time, base / (n_gpus * r.modeled_time)))
    return rows


@pytest.mark.benchmark(group="fig5")
def test_fig5_scaling_dgx1(benchmark):
    series = {mode: _series(mode) for mode in MODES}

    time_rows = []
    eff_rows = []
    for n_gpus in range(1, 9):
        time_rows.append(
            [n_gpus] + [f"{series[m][n_gpus - 1][1]:.2f}" for m in MODES]
        )
        eff_rows.append(
            [n_gpus] + [f"{series[m][n_gpus - 1][2]:.2%}" for m in MODES]
        )

    blocks = [
        format_table(
            ["GPUs"] + [f"{m} (s)" for m in MODES],
            time_rows,
            f"Fig. 5: modelled execution time, 16 tiles, DGX-1 (n=2^16, d=2^8)",
        ),
        format_table(
            ["GPUs"] + [f"Ep {m}" for m in MODES],
            eff_rows,
            "Fig. 5 (inset): parallel efficiency",
        ),
    ]

    # Per-kernel breakdown of the 1-GPU FP64 run (the horizontal bar).
    r1 = model_multi_tile(N, D, M, RunConfig(device="V100", n_tiles=16))
    blocks.append(
        format_table(
            ["kernel", "seconds"],
            [[k, f"{v:.2f}"] for k, v in sorted(r1.kernel_breakdown().items())],
            "Fig. 5 (top): kernel breakdown on one GPU (FP64)",
        )
    )
    emit("fig5_scaling_dgx1", "\n\n".join(blocks))

    benchmark.pedantic(lambda: _series("FP64"), rounds=1, iterations=1)

    # Paper claims.
    fp64 = series["FP64"]
    for n_gpus in (2, 4, 8):
        assert fp64[n_gpus - 1][2] > 0.85, f"FP64 efficiency at {n_gpus} GPUs"
    # Odd counts are less efficient than their even neighbours.
    assert fp64[2][2] < fp64[1][2]
    assert fp64[2][2] < fp64[3][2]
    # Reduced precision is faster.
    assert series["FP16"][0][1] < fp64[0][1]
