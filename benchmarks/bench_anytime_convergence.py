"""Related-work bench — the anytime property (STAMP / SCRIMP++ lineage).

The paper builds on STOMP-style exact-order evaluation; the anytime
algorithms it cites (STAMP, SCRIMP++) trade exactness of intermediate
states for interruptibility.  This bench quantifies that property on our
substrate: fraction of rows processed (random order) vs fraction of
profile entries already within 5% of their final value — the convergence
curve must dominate the linear diagonal.
"""

import pytest

from repro.core.anytime import convergence_curve
from repro.datasets import make_stress_dataset
from repro.reporting import format_table

from _harness import emit

FRACTIONS = (0.1, 0.25, 0.5, 0.75, 1.0)


@pytest.mark.benchmark(group="anytime")
def test_anytime_convergence(benchmark):
    ds = make_stress_dataset(n=1024, d=4, m=32, amplitude=4.0, seed=33)
    curve = convergence_curve(
        ds.reference, ds.query, ds.m, fractions=FRACTIONS, seed=3
    )
    rows = [
        [f"{frac:.0%}", f"{conv:.1%}", f"{conv / frac:.2f}x"]
        for frac, conv in curve
    ]
    table = format_table(
        ["work done", "entries converged (5% tol)", "vs linear"],
        rows,
        "Anytime convergence (random row order, n=1024, d=4, m=32)",
    )
    emit("anytime_convergence", table)

    benchmark.pedantic(
        lambda: convergence_curve(
            ds.reference[:400], ds.query[:400], ds.m, fractions=(0.5,), seed=3
        ),
        rounds=1,
        iterations=1,
    )

    convs = dict(curve)
    assert convs[1.0] == 1.0
    assert convs[0.25] > 0.25  # strictly dominates linear
    assert convs[0.5] > 0.5
    values = [conv for _, conv in curve]
    assert values == sorted(values)  # monotone refinement
