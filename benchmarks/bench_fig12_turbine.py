"""Fig. 11/12 + Table I — gas-turbine startup detection case study.

Paper setup: 1-d turbine-speed series (n=2^16, m=2^11) containing startup
patterns P1/P2; pairs of series are grouped into the four categories of
Table I (P1-P1, P2-P2, both-P1, both-P2) for GT1, GT2 and cross-machine
combinations; detection is scored with the relaxed recall at r=5%.

Paper series (Fig. 12): FP64/FP32 detect 100%; Mixed/FP16C beat FP16;
accuracy is independent of the data source (GT1 vs GT2) and of pattern
complexity for the compensated modes.  Table I lists the pair counts per
category — reproduced here at a scaled-down count.
"""

import pytest

from repro import matrix_profile
from repro.datasets import PAIR_CATEGORIES, make_turbine_pairs
from repro.metrics import relaxed_recall
from repro.reporting import format_table

from _harness import MODES, emit

N, M = 2**12, 2**8  # scaled from the paper's 2^16 / 2^11
PAIRS_PER_CATEGORY = 3
RELAXATION = 0.05

MACHINE_SETS = {
    "GT1": ("GT1", "GT1"),
    "GT2": ("GT2", "GT2"),
    "GT1-GT2": ("GT1", "GT2"),
}


def _category_recall(category, machines, mode, seed):
    pairs = make_turbine_pairs(
        category, PAIRS_PER_CATEGORY, N, M, machines=machines, seed=seed
    )
    hits, total = 0.0, 0
    for ref_series, qry_series in pairs:
        result = matrix_profile(ref_series.values, qry_series.values, m=M, mode=mode)
        targets_q = qry_series.positions_of(category.target)
        targets_r = ref_series.positions_of(category.target)
        rec = relaxed_recall(
            result.index,
            targets_q,
            [targets_r[0]] * len(targets_q),
            M,
            relaxation=RELAXATION,
        )
        hits += rec / 100.0 * len(targets_q)
        total += len(targets_q)
    return 100.0 * hits / max(total, 1)


@pytest.mark.benchmark(group="fig12")
def test_table1_pair_categories(benchmark):
    """Table I: the pair-category harness (scaled-down counts)."""
    rows = []
    for set_name in MACHINE_SETS:
        rows.append(
            [set_name] + [PAIRS_PER_CATEGORY for _ in PAIR_CATEGORIES]
        )
    table = format_table(
        ["machines"] + [c.name for c in PAIR_CATEGORIES],
        rows,
        "Table I (scaled): time-series pairs per category "
        f"(paper: 4160/4160/325/325 per machine row; ours: {PAIRS_PER_CATEGORY} "
        "pairs per cell at reduced scale)",
    )
    emit("table1_turbine_pairs", table)
    benchmark.pedantic(
        lambda: make_turbine_pairs(PAIR_CATEGORIES[0], 1, N, M, seed=0),
        rounds=1,
        iterations=1,
    )
    for category in PAIR_CATEGORIES:
        pairs = make_turbine_pairs(category, 2, N, M, seed=1)
        assert len(pairs) == 2


@pytest.mark.benchmark(group="fig12")
def test_fig12_turbine_relaxed_recall(benchmark):
    recalls = {}
    blocks = []
    for set_name, machines in MACHINE_SETS.items():
        rows = []
        for ci, category in enumerate(PAIR_CATEGORIES):
            row = [category.name]
            for mode in MODES:
                rec = _category_recall(category, machines, mode, seed=41 + ci)
                recalls[(set_name, category.name, mode)] = rec
                row.append(f"{rec:.0f}%")
            rows.append(row)
        blocks.append(
            format_table(
                ["category"] + list(MODES),
                rows,
                f"Fig. 12: relaxed recall (r=5%), signals from {set_name}",
            )
        )
    emit("fig12_turbine", "\n\n".join(blocks))

    benchmark.pedantic(
        lambda: _category_recall(PAIR_CATEGORIES[0], ("GT1", "GT1"), "Mixed", 99),
        rounds=1,
        iterations=1,
    )

    # Paper claims: FP64/FP32 at 100% everywhere; accuracy source-independent.
    for set_name in MACHINE_SETS:
        for category in PAIR_CATEGORIES:
            assert recalls[(set_name, category.name, "FP64")] == 100.0
            assert recalls[(set_name, category.name, "FP32")] == 100.0
    # Mixed at least as good as FP16 on average.
    mixed_avg = sum(
        recalls[(s, c.name, "Mixed")] for s in MACHINE_SETS for c in PAIR_CATEGORIES
    )
    fp16_avg = sum(
        recalls[(s, c.name, "FP16")] for s in MACHINE_SETS for c in PAIR_CATEGORIES
    )
    assert mixed_avg >= fp16_avg - 1.0
