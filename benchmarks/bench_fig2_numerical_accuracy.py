"""Fig. 2 — numerical accuracy (A and R) of the single-tile implementation
versus the CPU reference, swept over n, d and m for all precision modes.

Paper series (n=2^13..2^16, d/m sweeps at n=2^16): FP64 identical, FP32
~100%, FP16 low and decreasing with n, Mixed/FP16C roughly double the
FP16 accuracy.  We execute the same sweep at reduced scale (the error is a
function of stream length x machine epsilon, so the ordering and trends
reproduce).
"""

import pytest

from repro import matrix_profile
from repro.datasets import make_stress_dataset
from repro.metrics import recall_rate, relative_accuracy
from repro.reporting import format_table

from _harness import MODES, emit


def _accuracy_row(param, ds, ref_result, metric):
    row = [param]
    for mode in MODES:
        r = matrix_profile(ds.reference, ds.query, m=ds.m, mode=mode)
        if metric == "A":
            row.append(relative_accuracy(r.profile, ref_result.profile))
        else:
            row.append(recall_rate(r.index, ref_result.index))
    return row


def _sweep(values, build):
    rows_a, rows_r = [], []
    for v in values:
        ds = build(v)
        ref = matrix_profile(ds.reference, ds.query, m=ds.m, mode="FP64")
        rows_a.append(_accuracy_row(v, ds, ref, "A"))
        rows_r.append(_accuracy_row(v, ds, ref, "R"))
    return rows_a, rows_r


@pytest.mark.benchmark(group="fig2")
def test_fig2_numerical_accuracy(benchmark):
    headers_a = ["param"] + [f"A {m} (%)" for m in MODES]
    headers_r = ["param"] + [f"R {m} (%)" for m in MODES]
    blocks = []

    # Sweep 1: number of subsequences n (d=8, m=32).
    rows_a, rows_r = _sweep(
        [512, 1024, 2048],
        lambda n: make_stress_dataset(n=n, d=8, m=32, amplitude=4.0, seed=2),
    )
    blocks.append(format_table(headers_a, rows_a, "Fig. 2a: A vs n (d=8, m=32)"))
    blocks.append(format_table(headers_r, rows_r, "Fig. 2b: R vs n (d=8, m=32)"))

    # Sweep 2: dimensionality d (n=1024, m=32).
    rows_a, rows_r = _sweep(
        [4, 8, 16, 32],
        lambda d: make_stress_dataset(n=1024, d=d, m=32, amplitude=4.0, seed=3),
    )
    blocks.append(format_table(headers_a, rows_a, "Fig. 2c: A vs d (n=1024, m=32)"))
    blocks.append(format_table(headers_r, rows_r, "Fig. 2d: R vs d (n=1024, m=32)"))

    # Sweep 3: segment length m (n=1024, d=8).
    rows_a, rows_r = _sweep(
        [16, 32, 64],
        lambda m: make_stress_dataset(n=1024, d=8, m=m, amplitude=4.0, seed=4),
    )
    blocks.append(format_table(headers_a, rows_a, "Fig. 2e: A vs m (n=1024, d=8)"))
    blocks.append(format_table(headers_r, rows_r, "Fig. 2f: R vs m (n=1024, d=8)"))

    emit("fig2_numerical_accuracy", "\n\n".join(blocks))

    # Benchmark the representative computation: one Mixed-mode run.
    ds = make_stress_dataset(n=512, d=8, m=32, amplitude=4.0, seed=2)
    benchmark.pedantic(
        lambda: matrix_profile(ds.reference, ds.query, m=32, mode="Mixed"),
        rounds=1,
        iterations=1,
    )

    # Shape assertions mirroring the paper's claims.
    ref = matrix_profile(ds.reference, ds.query, m=32, mode="FP64")
    a32 = relative_accuracy(
        matrix_profile(ds.reference, ds.query, m=32, mode="FP32").profile, ref.profile
    )
    a16 = relative_accuracy(
        matrix_profile(ds.reference, ds.query, m=32, mode="FP16").profile, ref.profile
    )
    assert a32 > 99.0
    assert a32 >= a16
